//! Parallel-for substrate for the planning phase.
//!
//! With the `parallel` feature enabled, [`for_each_indexed`] fans the slice
//! out over `std::thread::scope` in contiguous chunks; without it, the same
//! signature runs sequentially. The substrate is deliberately minimal and
//! dependency-free so the crate builds offline; swapping in a rayon-backed
//! implementation later only touches this module.

/// Minimum slice length worth spawning threads for.
#[cfg(feature = "parallel")]
const PAR_THRESHOLD: usize = 4096;

/// Applies `f(i, &mut data[i])` for every index of `data`.
///
/// The closure must be safe to run concurrently on disjoint elements; each
/// element is visited exactly once.
#[cfg(feature = "parallel")]
pub(crate) fn for_each_indexed<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let len = data.len();
    if threads <= 1 || len < PAR_THRESHOLD {
        for (i, t) in data.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|s| {
        for (ci, chunk_slice) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = ci * chunk;
                for (j, t) in chunk_slice.iter_mut().enumerate() {
                    f(base + j, t);
                }
            });
        }
    });
}

/// Sequential fallback with the same signature as the parallel version.
#[cfg(not(feature = "parallel"))]
pub(crate) fn for_each_indexed<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    for (i, t) in data.iter_mut().enumerate() {
        f(i, t);
    }
}

/// Stable tag identifying the current worker thread, for the `check`
/// feature's plan-phase conflict detector.
///
/// Lives here (not in `check.rs`) because the repo lint confines
/// `std::thread` to this module; the tag is just a hash of the opaque
/// [`std::thread::ThreadId`].
#[cfg(feature = "check")]
pub(crate) fn worker_tag() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_index_once() {
        let mut data = vec![0usize; 10_000];
        for_each_indexed(&mut data, |i, slot| *slot = i + 1);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i + 1);
        }
    }
}
