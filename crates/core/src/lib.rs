//! Dynamic parallel tree contraction (Reif–Tate, SPAA 1994).
//!
//! This crate implements Miller–Reif tree contraction — alternating **rake**
//! (fold leaves into their parents) and randomized **compress** (splice out
//! unary chain nodes) — over an arena-allocated [`Forest`] of `u32`-indexed
//! nodes, and layers two engines on top of the recorded round-stamped
//! trace:
//!
//! * a **batch-dynamic** update API: subtree values resolve for every
//!   node from the recorded trace, batches of
//!   [`weight`](DynForest::batch_update_weights) edits *replay* only the
//!   trace slots whose inputs changed (change propagation with cached
//!   child aggregates — see the [`Propagate`] trait), and batches of
//!   [`cut`](DynForest::try_batch_cut) / [`link`](DynForest::try_batch_link)
//!   edits fall back to re-contracting the dirty set;
//! * a **batch query** engine: a [`QueryBatch`] of mixed subtree / path /
//!   LCA / component queries resolves in a single pass over the
//!   contraction DAG — one `O(n)` context sweep plus `O(log n)` per query
//!   along the trace's shortcut pointers — instead of one tree walk per
//!   query (see the [`query`] module docs for the construction).
//!
//! Value semantics are pluggable through the [`Algebra`] trait; shipped
//! instances double as correctness oracles against
//! [`Forest::sequential_fold`]:
//!
//! * [`SubtreeSum`] — weighted subtree sums;
//! * [`ExprEval`] — `+`/`×` expression-tree evaluation via affine function
//!   composition;
//! * [`MinMax`] — subtree extrema;
//! * [`OrderedRake`] — adapter giving any associative [`SeqMonoid`]
//!   **preorder** (non-commutative) semantics via sibling-indexed rake,
//!   e.g. [`SeqHash`], a rolling hash of the preorder label sequence.
//!
//! [`SubtreeSum`], [`ExprEval`] and [`MinMax`] are also [`PathAlgebra`]s,
//! so they answer path-aggregate queries.
//!
//! Per-round planning and batch query resolution are parallelized with
//! scoped threads behind the `parallel` feature (dependency-free; see
//! `par.rs`).
//!
//! Everything the engine does is observable through the [`obs`] module: a
//! statically-dispatched [`obs::Sink`] receives phase spans
//! (plan/apply/backsolve/dirty-mark/propagate) and per-round counters, and the
//! bundled [`obs::Profile`] collector aggregates them into latency
//! histograms (p50/p90/p99) and per-round totals. The default no-op sink
//! compiles all instrumentation out.
//!
//! The `check` cargo feature compiles in the [`check`] module's
//! correctness tooling — structural `validate()` methods on [`Forest`],
//! [`Contraction`] and [`DynForest`], per-round engine invariant hooks,
//! and a dynamic write-conflict detector for the plan/apply phases — all
//! const-gated so the default build pays nothing.
//!
//! ```
//! use dtc_core::{Answer, DynForest, Forest, QueryBatch, SubtreeSum};
//!
//! let mut f = Forest::new();
//! let root = f.add_root(1i64);
//! let mid = f.add_child(root, 2);
//! let leaf = f.add_child(mid, 3);
//!
//! // Static contraction via the builder; seed/profiling are opt-in.
//! let c = f.contraction().run(&SubtreeSum);
//! assert_eq!(*c.subtree_value(root), 6);
//! let p = f.contraction().seed(0x5EED).profiled().run(&SubtreeSum);
//! assert_eq!(p.profile().unwrap().total_retired(), 3);
//!
//! // Batch queries over the same contraction: one trace pass, many answers.
//! let mut batch = QueryBatch::new();
//! batch.subtree(mid).path(leaf, root).lca(leaf, mid).component_root(leaf);
//! let answers = c.query_batch(&f, &SubtreeSum, &batch).unwrap();
//! assert_eq!(answers[0], Ok(Answer::Value(5)));
//! assert_eq!(answers[1], Ok(Answer::PathValue(6)));
//! assert_eq!(answers[2], Ok(Answer::Node(mid)));
//! assert_eq!(answers[3], Ok(Answer::Node(root)));
//!
//! // Batch-dynamic updates with non-panicking edits and explicit staleness.
//! let mut d = DynForest::new(f, SubtreeSum);
//! d.batch_update_weights(&[(leaf, 30)]);
//! assert!(d.try_subtree_value(root).is_err()); // stale until recompute
//! d.recompute();
//! assert_eq!(d.subtree_value(root), 33);
//! let answers = d.query_batch(&batch).unwrap();
//! assert_eq!(answers[0], Ok(Answer::Value(32)));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod algebra;
mod arena;
pub mod check;
mod contract;
mod dynamic;
mod engine;
pub mod gen;
pub mod obs;
mod ordered;
mod par;
mod propagate;
pub mod query;
mod rng;

pub use algebra::{
    Affine, Algebra, ExprAcc, ExprEval, ExprLabel, ExprOp, Extrema, Invertible, MinMax,
    PathAlgebra, Propagate, SubtreeSum,
};
pub use arena::{Forest, NodeId};
pub use contract::{ContractOptions, Contraction, SlotKind};
pub use dynamic::{DynForest, EditError, UpdateStats};
pub use obs::Profile;
pub use ordered::{HashSeq, OrderedRake, RunsPart, Sandwich, SeqAcc, SeqHash, SeqMonoid};
pub use query::{Answer, Query, QueryBatch, QueryError, QueryOutcome};
