//! Dynamic parallel tree contraction (Reif–Tate, SPAA 1994).
//!
//! This crate implements Miller–Reif tree contraction — alternating **rake**
//! (fold leaves into their parents) and randomized **compress** (splice out
//! unary chain nodes) — over an arena-allocated [`Forest`] of `u32`-indexed
//! nodes, and layers a **batch-dynamic** update API on top: the contraction
//! records a round-stamped trace, cached subtree values are recovered for
//! every node by backsolving the trace, and batches of
//! [`cut`](DynForest::batch_cut) / [`link`](DynForest::batch_link) /
//! [`weight`](DynForest::batch_update_weights) edits re-run contraction only
//! on the dirty set.
//!
//! Value semantics are pluggable through the [`Algebra`] trait; two
//! workloads ship built in and double as correctness oracles against
//! [`Forest::sequential_fold`]:
//!
//! * [`SubtreeSum`] — weighted subtree sums;
//! * [`ExprEval`] — `+`/`×` expression-tree evaluation via affine function
//!   composition.
//!
//! The per-round planning phase is parallelized with scoped threads behind
//! the `parallel` feature (dependency-free; see `par.rs`).
//!
//! Everything the engine does is observable through the [`obs`] module: a
//! statically-dispatched [`obs::Sink`] receives phase spans
//! (plan/apply/backsolve/dirty-mark) and per-round counters, and the
//! bundled [`obs::Profile`] collector aggregates them into latency
//! histograms (p50/p90/p99) and per-round totals. The default no-op sink
//! compiles all instrumentation out.
//!
//! ```
//! use dtc_core::obs::Phase;
//! use dtc_core::{DynForest, Forest, SubtreeSum};
//!
//! let mut f = Forest::new();
//! let root = f.add_root(1i64);
//! let mid = f.add_child(root, 2);
//! let leaf = f.add_child(mid, 3);
//!
//! // Static contraction.
//! assert_eq!(*f.contract(&SubtreeSum).subtree_value(root), 6);
//!
//! // Profiled contraction: same result, plus a telemetry report.
//! let c = f.contract_profiled(&SubtreeSum, 0x5EED);
//! let prof = c.profile().unwrap();
//! assert_eq!(prof.total_retired(), 3); // every node died exactly once
//! assert_eq!(prof.phase_stats(Phase::Plan).spans() as u32, c.rounds());
//!
//! // Batch-dynamic updates, with per-recompute engine counters.
//! let mut d = DynForest::new(f, SubtreeSum);
//! d.enable_profiling();
//! d.batch_update_weights(&[(leaf, 30)]);
//! let stats = d.recompute();
//! assert_eq!(*d.subtree_value(root), 33);
//! assert!(stats.dirty <= 3);
//! let counters = stats.counters.unwrap();
//! assert_eq!(counters.retired(), stats.dirty as u64);
//! println!("{stats}");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod algebra;
mod arena;
mod contract;
mod dynamic;
mod engine;
pub mod gen;
pub mod obs;
mod par;
mod rng;

pub use algebra::{Affine, Algebra, ExprAcc, ExprEval, ExprLabel, ExprOp, SubtreeSum};
pub use arena::{Forest, NodeId};
pub use contract::Contraction;
pub use dynamic::{DynForest, UpdateStats};
pub use obs::Profile;
