//! Dynamic parallel tree contraction (Reif–Tate, SPAA 1994).
//!
//! This crate implements Miller–Reif tree contraction — alternating **rake**
//! (fold leaves into their parents) and randomized **compress** (splice out
//! unary chain nodes) — over an arena-allocated [`Forest`] of `u32`-indexed
//! nodes, and layers a **batch-dynamic** update API on top: the contraction
//! records a round-stamped trace, cached subtree values are recovered for
//! every node by backsolving the trace, and batches of
//! [`cut`](DynForest::batch_cut) / [`link`](DynForest::batch_link) /
//! [`weight`](DynForest::batch_update_weights) edits re-run contraction only
//! on the dirty set.
//!
//! Value semantics are pluggable through the [`Algebra`] trait; two
//! workloads ship built in and double as correctness oracles against
//! [`Forest::sequential_fold`]:
//!
//! * [`SubtreeSum`] — weighted subtree sums;
//! * [`ExprEval`] — `+`/`×` expression-tree evaluation via affine function
//!   composition.
//!
//! The per-round planning phase is parallelized with scoped threads behind
//! the `parallel` feature (dependency-free; see `par.rs`).
//!
//! ```
//! use dtc_core::{DynForest, Forest, SubtreeSum};
//!
//! let mut f = Forest::new();
//! let root = f.add_root(1i64);
//! let mid = f.add_child(root, 2);
//! let leaf = f.add_child(mid, 3);
//!
//! // Static contraction.
//! assert_eq!(*f.contract(&SubtreeSum).subtree_value(root), 6);
//!
//! // Batch-dynamic updates.
//! let mut d = DynForest::new(f, SubtreeSum);
//! d.batch_update_weights(&[(leaf, 30)]);
//! let stats = d.recompute();
//! assert_eq!(*d.subtree_value(root), 33);
//! assert!(stats.dirty <= 3);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod algebra;
mod arena;
mod contract;
mod dynamic;
mod engine;
pub mod gen;
mod par;
mod rng;

pub use algebra::{Affine, Algebra, ExprAcc, ExprEval, ExprLabel, ExprOp, SubtreeSum};
pub use arena::{Forest, NodeId};
pub use contract::Contraction;
pub use dynamic::{DynForest, UpdateStats};
