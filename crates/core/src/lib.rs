pub fn placeholder() {}
