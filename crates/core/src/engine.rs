//! The rake/compress contraction engine.
//!
//! The engine runs classic Miller–Reif tree contraction over an explicit
//! *active set* of nodes, which makes the same code path serve both full
//! (static) contraction — active set = every node — and dirty-set
//! re-contraction for batch-dynamic updates — active set = the nodes whose
//! cached subtree values were invalidated.
//!
//! Each round proceeds in two phases:
//!
//! 1. **Plan** (read-only, parallelized when the `parallel` feature is on):
//!    every live node inspects its local neighbourhood and picks one action:
//!    * `Finish` — it is a childless root; its accumulator is its value.
//!    * `Rake` — it is a childless non-root; fold its value into the parent.
//!    * `Splice` — it proposes compressing its *parent* `v`: `v` is unary
//!      (this node is the only child), `v` is not a root, `v` flipped heads
//!      and `v`'s parent flipped tails this round. The coin condition is a
//!      randomized independent set on chains: no two adjacent nodes are
//!      spliced in the same round, so all planned actions commute.
//! 2. **Apply** (sequential): execute the planned actions. Rake absorbs the
//!    child's contribution into the parent accumulator; splice composes the
//!    victim's unary function into the surviving edge and reattaches the
//!    child to its grandparent.
//!
//! Every node death is stamped with its round and recorded in a trace
//! (`Death`), forming the round-stamped contraction DAG. A reverse replay
//! of the trace ([`Scratch::backsolve`]) recovers the final subtree value of
//! *every* node, not just the roots — this is what lets the dynamic layer
//! reuse cached values for clean subtrees.
//!
//! The run loop reports into a statically-dispatched [`Sink`]: per-round
//! `plan`/`apply` spans and a [`RoundCounters`] record (frontier size,
//! rakes, splices, finishes, coin rejections). All instrumentation is
//! guarded by `S::ENABLED`, so the default `NoopSink` path compiles to the
//! bare loop.

use crate::algebra::Algebra;
use crate::arena::NONE;
use crate::check::{self, invariant, Cell, WriteMode};
use crate::obs::{EngineCounters, Phase, RoundCounters, Sink};
use crate::rng::coin;
use crate::{par, NodeId};
use std::time::Instant;

/// Hard cap on contraction rounds; with rake + randomized compress the
/// expected round count is `O(log n)`, so hitting this indicates a bug.
const MAX_ROUNDS: u32 = 10_000;

/// Per-round action chosen by a live node during the plan phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Action {
    #[default]
    None,
    /// Childless root: record its component value and retire it.
    Finish,
    /// Childless non-root: fold into the parent and retire.
    Rake,
    /// Splice out this node's (unary) parent.
    Splice,
    /// Splice preconditions held but the coin toss failed; behaves like
    /// `None` and exists only so enabled sinks can count rejections.
    CoinReject,
}

/// How a node left the contraction, with everything needed to backsolve its
/// final subtree value.
#[derive(Debug, Clone, Default)]
pub(crate) enum Death<A: Algebra> {
    /// Still alive (or never part of the active set).
    #[default]
    None,
    /// Raked: the node's final value was already known at death.
    Raked(A::Val),
    /// Compressed: `val(self) = fun(val(child))`, where `child` strictly
    /// outlives this node.
    Compressed { child: u32, fun: A::Fun },
    /// A root whose contraction finished; its value is the component value.
    Root(A::Val),
}

/// Outcome of one engine run.
pub(crate) struct RunOutcome<A: Algebra> {
    /// `(root, component value)` for every component root in the active set.
    pub components: Vec<(NodeId, A::Val)>,
    /// Number of rake/compress rounds executed.
    pub rounds: u32,
    /// Whole-run action totals; all-zero unless the sink was enabled.
    pub counters: EngineCounters,
}

/// Reusable per-node working state, indexed by raw node id.
///
/// All vectors are sized to the forest; a run only reads and writes entries
/// of its active set (plus their parents, which upward-closure guarantees
/// are active too), so the scratch can be reused across runs without
/// clearing.
pub(crate) struct Scratch<A: Algebra> {
    /// Working copy of parent pointers (mutated by splices).
    pub par: Vec<u32>,
    /// Live child count.
    pub count: Vec<u32>,
    /// Partial accumulator.
    pub acc: Vec<Option<A::Acc>>,
    /// Edge function towards the current parent.
    pub fun: Vec<Option<A::Fun>>,
    /// Liveness flag.
    pub alive: Vec<bool>,
    /// Death record per node.
    pub death: Vec<Death<A>>,
    /// Round stamp per death (1-based; 0 = untouched).
    pub death_round: Vec<u32>,
    /// Nodes in death order; reversing it yields a valid backsolve order.
    pub death_order: Vec<u32>,
    /// Working parent at the moment of death (`NONE` for finished roots).
    /// Because a node's working parent always strictly outlives it, these
    /// pointers form a shortcut tree of depth ≤ rounds — the spine of the
    /// contraction DAG that the batch query engine climbs.
    pub death_parent: Vec<u32>,
    /// Sibling index of each node in its (original) parent's child list.
    /// Passed to [`Algebra::absorb_at`] so ordered (non-commutative)
    /// algebras can reassemble children in child-list order even though
    /// rake retires siblings in arbitrary round order. A spliced-out
    /// node bequeaths its slot to its surviving child.
    pub sib: Vec<u32>,
    /// The sibling slot a node surrendered when it was spliced out: the
    /// position *in its own child list* where its surviving chain keeps
    /// contributing (recorded just before `sib` is overwritten by the
    /// bequest). Change propagation uses it to rebuild a compressed
    /// node's accumulator from its original children minus that slot.
    pub gap: Vec<u32>,
}

impl<A: Algebra> Default for Scratch<A> {
    fn default() -> Self {
        Scratch {
            par: Vec::new(),
            count: Vec::new(),
            acc: Vec::new(),
            fun: Vec::new(),
            alive: Vec::new(),
            death: Vec::new(),
            death_round: Vec::new(),
            death_order: Vec::new(),
            death_parent: Vec::new(),
            sib: Vec::new(),
            gap: Vec::new(),
        }
    }
}

impl<A: Algebra> Clone for Scratch<A>
where
    A::Acc: Clone,
    A::Fun: Clone,
    A::Val: Clone,
{
    fn clone(&self) -> Self {
        Scratch {
            par: self.par.clone(),
            count: self.count.clone(),
            acc: self.acc.clone(),
            fun: self.fun.clone(),
            alive: self.alive.clone(),
            death: self.death.clone(),
            death_round: self.death_round.clone(),
            death_order: self.death_order.clone(),
            death_parent: self.death_parent.clone(),
            sib: self.sib.clone(),
            gap: self.gap.clone(),
        }
    }
}

impl<A: Algebra> Scratch<A> {
    /// Grows all per-node tables to cover `n` nodes.
    pub fn ensure(&mut self, n: usize) {
        if self.par.len() < n {
            self.par.resize(n, NONE);
            self.count.resize(n, 0);
            self.acc.resize(n, None);
            self.fun.resize(n, None);
            self.alive.resize(n, false);
            self.death.resize_with(n, Death::default);
            self.death_round.resize(n, 0);
            self.death_parent.resize(n, NONE);
            self.sib.resize(n, 0);
            self.gap.resize(n, 0);
        }
    }

    /// Runs rake/compress rounds until every active node has died,
    /// reporting phase spans and per-round counters into `sink`.
    ///
    /// Callers must have seeded `par`, `count`, `acc`, `fun`, `alive` and
    /// reset `death`/`death_round` for every node in `active` beforehand.
    ///
    /// Telemetry is statically dispatched: every instrumentation site is
    /// guarded by `S::ENABLED`, so with [`crate::obs::NoopSink`] this
    /// compiles to exactly the uninstrumented loop.
    pub fn contract_with<S: Sink>(
        &mut self,
        alg: &A,
        active: &[u32],
        seed: u64,
        sink: &mut S,
    ) -> RunOutcome<A> {
        self.death_order.clear();
        let mut components = Vec::new();
        let mut live: Vec<u32> = active.to_vec();
        let mut actions: Vec<Action> = Vec::new();
        let mut round = 0;
        let mut counters = EngineCounters::default();
        // Shadow write-log for the conflict detector; field-less no-op
        // without the `check` feature (see `check.rs`).
        let mut wlog = check::WriteLog::new();

        while !live.is_empty() {
            round += 1;
            assert!(
                round <= MAX_ROUNDS,
                "contraction failed to converge after {MAX_ROUNDS} rounds"
            );
            let frontier = live.len();
            let deaths_before = self.death_order.len();
            wlog.begin_round(round);

            // Plan: pure reads of the pre-round state; each slot is owned by
            // one node, so this parallelizes without synchronization.
            let plan_start = if S::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            actions.clear();
            actions.resize(live.len(), Action::None);
            {
                let (par, count, live) = (&self.par, &self.count, &live[..]);
                // Under `check`, every worker logs which action slots it
                // actually wrote; two workers on one slot fail the round.
                let plan_log = check::PlanLog::new();
                let plan_log = &plan_log;
                par::for_each_indexed(&mut actions, |i, slot| {
                    *slot = decide(par, count, seed, round, live[i]);
                    plan_log.record(live[i]);
                });
                check::must(plan_log.finish());
            }
            if let Some(t) = plan_start {
                sink.phase(Phase::Plan, t.elapsed().as_nanos() as u64);
            }

            // Apply: the coin condition guarantees all actions touch
            // disjoint state, so any order is correct.
            let apply_start = if S::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            let (mut rakes, mut splices, mut finishes, mut coin_rejections) =
                (0u32, 0u32, 0u32, 0u32);
            for (i, &action) in actions.iter().enumerate() {
                let u = live[i];
                match action {
                    Action::None => {}
                    Action::CoinReject => {
                        if S::ENABLED {
                            coin_rejections += 1;
                        }
                    }
                    Action::Finish => {
                        if S::ENABLED {
                            finishes += 1;
                        }
                        // lint:allow(panic): callers seed Some acc for every active node
                        let val = alg.finish(self.acc[u as usize].as_ref().unwrap());
                        components.push((NodeId(u), val.clone()));
                        check::must(wlog.record(Cell::Life(u), WriteMode::Exclusive, u as u64));
                        self.kill(u, round, Death::Root(val));
                    }
                    Action::Rake => {
                        if S::ENABLED {
                            rakes += 1;
                        }
                        let p = self.par[u as usize] as usize;
                        // lint:allow(panic): callers seed Some acc for every active node
                        let val = alg.finish(self.acc[u as usize].as_ref().unwrap());
                        let contrib =
                            // lint:allow(panic): callers seed Some fun for every active node
                            alg.apply(self.fun[u as usize].as_ref().unwrap(), val.clone());
                        let slot = self.sib[u as usize];
                        // Sibling rakes hit the same parent cells, but
                        // absorb/decrement commute — recorded as such.
                        check::must(wlog.record(Cell::Acc(p as u32), WriteMode::Absorb, u as u64));
                        check::must(wlog.record(
                            Cell::Count(p as u32),
                            WriteMode::Decrement,
                            u as u64,
                        ));
                        check::must(wlog.record(Cell::Life(u), WriteMode::Exclusive, u as u64));
                        // lint:allow(panic): the parent of an active node is active (upward closure)
                        alg.absorb_at(self.acc[p].as_mut().unwrap(), slot, contrib);
                        self.count[p] -= 1;
                        self.kill(u, round, Death::Raked(val));
                    }
                    Action::Splice => {
                        // `u` splices out its unary parent `v`, reattaching
                        // itself to the grandparent. `g` maps val(u) to
                        // val(v); the new edge maps val(u) to v's old
                        // contribution at the grandparent.
                        if S::ENABLED {
                            splices += 1;
                        }
                        let v = self.par[u as usize];
                        let gp = self.par[v as usize];
                        // lint:allow(panic): live nodes carry Some acc/fun by seeding
                        let tf = alg.to_fun(self.acc[v as usize].as_ref().unwrap());
                        // lint:allow(panic): live nodes carry Some acc/fun by seeding
                        let g = alg.compose(&tf, self.fun[u as usize].as_ref().unwrap());
                        // lint:allow(panic): live nodes carry Some acc/fun by seeding
                        let new_fun = alg.compose(self.fun[v as usize].as_ref().unwrap(), &g);
                        check::must(wlog.record(Cell::Fun(u), WriteMode::Exclusive, u as u64));
                        check::must(wlog.record(Cell::Par(u), WriteMode::Exclusive, u as u64));
                        check::must(wlog.record(Cell::Sib(u), WriteMode::Exclusive, u as u64));
                        check::must(wlog.record(Cell::Life(v), WriteMode::Exclusive, u as u64));
                        self.fun[u as usize] = Some(new_fun);
                        self.par[u as usize] = gp;
                        // The victim remembers which of its own child slots
                        // the surviving chain occupies (change propagation
                        // rebuilds its accumulator around that gap), then
                        // `u` inherits the victim's slot in the grandparent's
                        // child order, keeping ordered rakes well-indexed.
                        self.gap[v as usize] = self.sib[u as usize];
                        self.sib[u as usize] = self.sib[v as usize];
                        self.kill(v, round, Death::Compressed { child: u, fun: g });
                    }
                }
            }
            if let Some(t) = apply_start {
                sink.phase(Phase::Apply, t.elapsed().as_nanos() as u64);
            }
            if S::ENABLED {
                let rc = RoundCounters {
                    round,
                    frontier,
                    rakes,
                    splices,
                    finishes,
                    coin_rejections,
                };
                counters.absorb_round(&rc);
                sink.round(&rc);
            }

            let alive = &self.alive;
            live.retain(|&u| alive[u as usize]);
            if check::ENABLED {
                self.check_round(round, &live, deaths_before);
            }
        }

        RunOutcome {
            components,
            rounds: round,
            counters,
        }
    }

    fn kill(&mut self, u: u32, round: u32, death: Death<A>) {
        if check::ENABLED {
            invariant!(
                self.alive[u as usize],
                "second death of node n{u} in round {round}"
            );
        }
        self.alive[u as usize] = false;
        self.death[u as usize] = death;
        self.death_round[u as usize] = round;
        self.death_parent[u as usize] = self.par[u as usize];
        self.death_order.push(u);
    }

    /// Post-round invariant sweep (`check` feature): every node killed this
    /// round carries a coherent, round-stamped death record whose recorded
    /// parent survived the round, and every survivor has live state — a
    /// present accumulator and edge function, a live working parent, and a
    /// `count` that matches its actual number of live children. `O(frontier)`
    /// per round.
    #[cfg(feature = "check")]
    fn check_round(&self, round: u32, live: &[u32], deaths_before: usize) {
        use std::collections::HashMap;
        for &u in &self.death_order[deaths_before..] {
            let ui = u as usize;
            invariant!(
                !self.alive[ui],
                "node n{u} died in round {round} but is still flagged alive"
            );
            invariant!(
                self.death_round[ui] == round,
                "node n{u} killed in round {round} is stamped with round {}",
                self.death_round[ui]
            );
            invariant!(
                !matches!(self.death[ui], Death::None),
                "node n{u} died in round {round} without a death record"
            );
            let dp = self.death_parent[ui];
            invariant!(
                dp == NONE || self.alive[dp as usize],
                "death parent n{dp} of n{u} did not survive round {round}"
            );
        }
        let mut kids: HashMap<u32, u32> = HashMap::new();
        for &u in live {
            let ui = u as usize;
            invariant!(self.alive[ui], "retained node n{u} is not alive");
            invariant!(
                self.acc[ui].is_some(),
                "live node n{u} lost its accumulator in round {round}"
            );
            invariant!(
                self.fun[ui].is_some(),
                "live node n{u} lost its edge function in round {round}"
            );
            let p = self.par[ui];
            if p != NONE {
                invariant!(
                    self.alive[p as usize],
                    "live node n{u} points at dead parent n{p} after round {round}"
                );
                *kids.entry(p).or_insert(0) += 1;
            }
        }
        for &u in live {
            let expect = kids.get(&u).copied().unwrap_or(0);
            invariant!(
                self.count[u as usize] == expect,
                "count[n{u}] = {} after round {round}, but {expect} live children remain",
                self.count[u as usize]
            );
        }
    }

    #[cfg(not(feature = "check"))]
    #[inline(always)]
    fn check_round(&self, _round: u32, _live: &[u32], _deaths_before: usize) {}

    /// Extracts the shortcut structure of the last run over nodes `0..n`:
    /// each node's working parent at death (`up`), plus CSR hop lists
    /// (`hop_off`, `hop_victims`) giving, for every node `x`, the nodes that
    /// were spliced out from directly above it — i.e. the original-tree
    /// ancestors lying strictly between `x` and `up[x]`, in ascending death
    /// round (equivalently, bottom-to-top along the original path).
    ///
    /// Concatenating `x`, `hop_victims(x)`, `up[x]`, `hop_victims(up[x])`,
    /// … therefore reconstructs `x`'s *entire* original ancestor path while
    /// only ever following `O(rounds)` shortcut pointers; this is what the
    /// batch query engine traverses.
    ///
    /// Only meaningful after a run whose active set was the full `0..n`
    /// range (static contraction); a dirty-set run leaves stale entries for
    /// untouched nodes.
    pub fn trace_links(&self, n: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let up = self.death_parent[..n].to_vec();
        let mut hop_off = vec![0u32; n + 1];
        for &u in &self.death_order {
            if let Death::Compressed { child, .. } = &self.death[u as usize] {
                hop_off[*child as usize + 1] += 1;
            }
        }
        for i in 0..n {
            hop_off[i + 1] += hop_off[i];
        }
        let mut cursor = hop_off.clone();
        let mut hop_victims = vec![0u32; hop_off[n] as usize];
        // `death_order` is chronological, so each hop list comes out in
        // ascending death round, which is bottom-to-top along the path.
        for &u in &self.death_order {
            if let Death::Compressed { child, .. } = &self.death[u as usize] {
                let c = *child as usize;
                hop_victims[cursor[c] as usize] = u;
                cursor[c] += 1;
            }
        }
        (up, hop_off, hop_victims)
    }

    /// Replays the death trace in reverse, writing the final subtree value
    /// of every active node into `out`.
    ///
    /// Raked nodes and finished roots knew their value at death; a
    /// compressed node's value is its recorded unary function applied to
    /// the value of the child that outlived it — which, processed in
    /// reverse death order, is always already solved.
    pub fn backsolve(&self, alg: &A, out: &mut [Option<A::Val>]) {
        for &u in self.death_order.iter().rev() {
            let val = match &self.death[u as usize] {
                // lint:allow(panic): kill() records a death for every retired node
                Death::None => unreachable!("dead node without death record"),
                Death::Raked(v) | Death::Root(v) => v.clone(),
                Death::Compressed { child, fun } => {
                    let child_val = out[*child as usize]
                        .clone()
                        // lint:allow(panic): reverse death order solves children first
                        .expect("compressed child solved before parent");
                    alg.apply(fun, child_val)
                }
            };
            out[u as usize] = Some(val);
        }
    }
}

/// Picks the action for live node `u` from the pre-round snapshot.
///
/// Compress eligibility is decided by the *child*: `u` proposes splicing its
/// parent `v` when `v` is unary (so `u` is the only child), `v` has a
/// grandparent to reattach to, `u` itself is not a leaf (leaves rake
/// instead, and raking into a vanishing parent would race), and the
/// heads/tails coin pair holds. The coins exclude adjacent splices: if `v`
/// is spliced it flipped heads, so neither `v`'s parent (needs heads as a
/// victim but flipped tails) nor `u` (its parent `v` would need tails) can
/// be spliced in the same round.
///
/// A candidate that loses only the coin toss returns `CoinReject` — same
/// no-op behaviour as `None`, but countable by telemetry sinks.
#[inline]
fn decide(par: &[u32], count: &[u32], seed: u64, round: u32, u: u32) -> Action {
    let p = par[u as usize];
    if count[u as usize] == 0 {
        return if p == NONE {
            Action::Finish
        } else {
            Action::Rake
        };
    }
    if p == NONE {
        return Action::None;
    }
    let gp = par[p as usize];
    if gp == NONE || count[p as usize] != 1 {
        return Action::None;
    }
    if coin(seed, round, p) && !coin(seed, round, gp) {
        Action::Splice
    } else {
        Action::CoinReject
    }
}
