//! Small deterministic PRNG helpers (no external crates).

/// SplitMix64 finalizer — a strong 64-bit mixer.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-(seed, round, node) coin flip used by the compress step.
///
/// Stateless: every node can evaluate its own coin and its neighbours'
/// coins in the same round without communication, which is what makes the
/// randomized independent-set selection embarrassingly parallel.
#[inline]
pub(crate) fn coin(seed: u64, round: u32, node: u32) -> bool {
    splitmix64(seed ^ ((round as u64) << 34) ^ node as u64) & 1 == 1
}

/// Tiny xorshift64* generator for test/bench data generation.
///
/// Deterministic and dependency-free; re-exported as
/// [`gen::XorShift64`](crate::gen::XorShift64) so tests and benches can
/// share it instead of rolling their own.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: splitmix64(seed) | 1,
        }
    }

    /// Next pseudorandom 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..bound`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        self.next_u64() % bound
    }

    /// Small signed weight in `-1000..=1000`.
    #[inline]
    pub fn weight(&mut self) -> i64 {
        self.below(2001) as i64 - 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coin_is_deterministic() {
        assert_eq!(coin(1, 2, 3), coin(1, 2, 3));
    }

    #[test]
    fn xorshift_is_not_constant() {
        let mut r = XorShift64::new(42);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }
}
