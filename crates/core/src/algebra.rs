//! Contraction algebras: the value semantics plugged into the engine.
//!
//! A [`Algebra`] describes how subtree values are built up during rake and
//! compress steps. The formulation follows Miller–Reif expression
//! evaluation: every live node keeps a partial accumulator (`Acc`) holding
//! the already-raked children, and every live edge carries a unary function
//! (`Fun`) mapping the child's final subtree value to its contribution at
//! the parent. Rake folds a finished child through its edge function into
//! the parent accumulator; compress composes edge functions so a unary
//! chain collapses to a single edge.
//!
//! Two concrete algebras ship with the crate:
//! * [`SubtreeSum`] — weighted subtree sums over `i64` labels;
//! * [`ExprEval`] — arithmetic expression trees with `+` and `×` internal
//!   nodes, evaluated via affine function composition.
//!
//! All arithmetic is wrapping (`ℤ/2⁶⁴`-style), so contraction and the
//! sequential oracle agree exactly even when products overflow.

use crate::check::invariant;

/// Value semantics for tree contraction.
///
/// Laws the engine relies on (for labels actually used in a forest):
/// * `absorb` must be commutative across sibling values: siblings may be
///   raked in any order within a round.
/// * `compose` must be associative with `identity` as unit, and
///   `apply(compose(f, g), x) == apply(f, apply(g, x))`.
/// * For a node with accumulator `acc` and exactly one remaining child
///   whose final value is `x`: the node's final value must equal
///   `apply(to_fun(acc), x)`, and for a node with no remaining children it
///   must equal `finish(acc)`.
pub trait Algebra: Clone {
    /// Per-node input label (weight, operator, ...).
    type Label: Clone;
    /// Final subtree value. `PartialEq` lets change propagation detect
    /// when a replayed action reproduced its recorded result and cut off.
    type Val: Clone + PartialEq;
    /// Partial accumulator held by a live node.
    type Acc: Clone;
    /// Unary function `Val -> Val` carried by a live edge.
    type Fun: Clone;

    /// Fresh accumulator for a node with the given label and no children
    /// absorbed yet.
    fn init_acc(&self, label: &Self::Label) -> Self::Acc;

    /// Folds a finished child's contribution into the accumulator.
    fn absorb(&self, acc: &mut Self::Acc, child: Self::Val);

    /// Like [`Algebra::absorb`], but also told the child's *sibling index*
    /// (its position in the parent's child list). Commutative algebras keep
    /// the default, which ignores the index; ordered (non-commutative)
    /// algebras such as [`OrderedRake`](crate::OrderedRake) override it to
    /// reassemble children in child-list order even though the engine
    /// retires siblings in arbitrary round order.
    ///
    /// The engine always calls this variant and guarantees that a spliced
    /// chain contributes at the slot of its topmost node, so every index in
    /// `0..children` is absorbed exactly once.
    #[inline]
    fn absorb_at(&self, acc: &mut Self::Acc, index: u32, child: Self::Val) {
        let _ = index;
        self.absorb(acc, child);
    }

    /// Final value of a node all of whose children have been absorbed.
    fn finish(&self, acc: &Self::Acc) -> Self::Val;

    /// Unary function for a node with exactly one remaining child: the
    /// node's final value as a function of that child's final value.
    fn to_fun(&self, acc: &Self::Acc) -> Self::Fun;

    /// Identity edge function.
    fn identity(&self) -> Self::Fun;

    /// Function composition, `outer ∘ inner`.
    fn compose(&self, outer: &Self::Fun, inner: &Self::Fun) -> Self::Fun;

    /// Applies an edge function to a value.
    fn apply(&self, f: &Self::Fun, x: Self::Val) -> Self::Val;
}

/// Algebras whose [`Algebra::absorb`] can be undone: removing one child's
/// contribution from an accumulator without refolding the others.
///
/// Change propagation uses this for the subtract/re-add fast path on
/// high-degree nodes: when one child of a 10⁵-ary star changes, the
/// parent's accumulator is patched in `O(1)` instead of re-absorbing every
/// clean sibling. Law: `unabsorb(absorb(acc, x), x) == acc` for any
/// reachable accumulator.
pub trait Invertible: Algebra {
    /// Removes a previously absorbed child contribution from `acc`.
    fn unabsorb(&self, acc: &mut Self::Acc, child: Self::Val);
}

impl Invertible for SubtreeSum {
    #[inline]
    fn unabsorb(&self, acc: &mut i64, child: i64) {
        *acc = acc.wrapping_sub(child);
    }
}

/// Extension required by [`DynForest`](crate::DynForest) change
/// propagation: a *partial aggregate* over a contiguous slot range of a
/// node's children, so a dirty parent can rebuild its accumulator from
/// cached per-child contributions instead of re-resolving every clean
/// child.
///
/// Two strategies hide behind one interface, selected by
/// [`Propagate::INVERTIBLE`]:
///
/// * **invertible** (e.g. [`SubtreeSum`]) — one flat `Part` aggregates all
///   children; a changed child is patched by [`Propagate::part_remove`] +
///   [`Propagate::part_merge`] in `O(1)`;
/// * **non-invertible** (e.g. [`MinMax`], [`ExprEval`],
///   [`OrderedRake`](crate::OrderedRake)) — the propagator keeps a
///   balanced sibling-accumulation tree of `Part`s and replays an
///   `O(log degree)` root-to-leaf path on change.
///
/// Laws: `part_merge` must be associative with `part_empty` as unit, and
/// merging the parts of slots `0..k` **in ascending slot order** then
/// absorbing via [`Propagate::absorb_part`] must equal absorbing each
/// child with [`Algebra::absorb_at`] directly. (Ascending order is what
/// lets ordered algebras participate.)
pub trait Propagate: Algebra {
    /// Aggregate of the contributions of a contiguous range of child
    /// slots.
    type Part: Clone;

    /// `true` when [`Propagate::part_remove`] is implemented and `O(1)`;
    /// the propagator then keeps a single flat `Part` per node instead of
    /// a sibling tree.
    const INVERTIBLE: bool = false;

    /// The aggregate of zero children (unit of [`Propagate::part_merge`]).
    fn part_empty(&self) -> Self::Part;

    /// The aggregate of the single child at slot `slot` with final value
    /// `child`.
    fn part_of(&self, slot: u32, child: Self::Val) -> Self::Part;

    /// Merges two adjacent ranges; `lo` covers strictly lower slots than
    /// `hi`.
    fn part_merge(&self, lo: &Self::Part, hi: &Self::Part) -> Self::Part;

    /// Folds a full-range aggregate into a node accumulator, as if every
    /// covered child had been absorbed via [`Algebra::absorb_at`].
    fn absorb_part(&self, acc: &mut Self::Acc, part: &Self::Part);

    /// Removes the child at `slot` (whose contribution was `old`) from a
    /// flat aggregate. Only called when [`Propagate::INVERTIBLE`] is
    /// `true`; the default is unreachable and flags misuse in debug
    /// builds.
    #[inline]
    fn part_remove(&self, part: &mut Self::Part, slot: u32, old: Self::Val) {
        let _ = (part, slot, old);
        debug_assert!(false, "part_remove called on a non-invertible algebra");
    }
}

impl Propagate for SubtreeSum {
    /// Sum of the covered children's subtree values.
    type Part = i64;
    const INVERTIBLE: bool = true;

    #[inline]
    fn part_empty(&self) -> i64 {
        0
    }

    #[inline]
    fn part_of(&self, _slot: u32, child: i64) -> i64 {
        child
    }

    #[inline]
    fn part_merge(&self, lo: &i64, hi: &i64) -> i64 {
        lo.wrapping_add(*hi)
    }

    #[inline]
    fn absorb_part(&self, acc: &mut i64, part: &i64) {
        *acc = acc.wrapping_add(*part);
    }

    #[inline]
    fn part_remove(&self, part: &mut i64, _slot: u32, old: i64) {
        *part = part.wrapping_sub(old);
    }
}

impl Propagate for MinMax {
    /// Join of the covered children's extrema.
    type Part = Extrema;

    #[inline]
    fn part_empty(&self) -> Extrema {
        Extrema::NEUTRAL
    }

    #[inline]
    fn part_of(&self, _slot: u32, child: Extrema) -> Extrema {
        child
    }

    #[inline]
    fn part_merge(&self, lo: &Extrema, hi: &Extrema) -> Extrema {
        lo.join(*hi)
    }

    #[inline]
    fn absorb_part(&self, acc: &mut Extrema, part: &Extrema) {
        *acc = acc.join(*part);
    }
}

impl Propagate for ExprEval {
    /// `(sum, product)` of the covered children — both folds are carried
    /// because the parent's operator (which picks one) is not known at
    /// merge time.
    type Part = (i64, i64);

    #[inline]
    fn part_empty(&self) -> (i64, i64) {
        (0, 1)
    }

    #[inline]
    fn part_of(&self, _slot: u32, child: i64) -> (i64, i64) {
        (child, child)
    }

    #[inline]
    fn part_merge(&self, lo: &(i64, i64), hi: &(i64, i64)) -> (i64, i64) {
        (lo.0.wrapping_add(hi.0), lo.1.wrapping_mul(hi.1))
    }

    #[inline]
    fn absorb_part(&self, acc: &mut ExprAcc, part: &(i64, i64)) {
        match acc {
            // A leaf only ever receives the empty aggregate (leaves have
            // no children); absorbing it is the identity.
            ExprAcc::Leaf(_) => {}
            ExprAcc::Partial { op, folded } => {
                *folded = match op {
                    ExprOp::Add => folded.wrapping_add(part.0),
                    ExprOp::Mul => folded.wrapping_mul(part.1),
                }
            }
        }
    }
}

/// Subtree-sum aggregation over `i64` node weights.
///
/// `Acc` is the partial sum, and the edge functions are additive shifts, so
/// compress simply adds the spliced-out chain's partial sums.
///
/// ```
/// use dtc_core::{Forest, SubtreeSum};
/// let mut f = Forest::new();
/// let r = f.add_root(10i64);
/// let a = f.add_child(r, 20);
/// f.add_child(a, 30);
/// assert_eq!(*f.contraction().run(&SubtreeSum).subtree_value(r), 60);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubtreeSum;

impl Algebra for SubtreeSum {
    type Label = i64;
    type Val = i64;
    type Acc = i64;
    /// Additive shift.
    type Fun = i64;

    #[inline]
    fn init_acc(&self, label: &i64) -> i64 {
        *label
    }

    #[inline]
    fn absorb(&self, acc: &mut i64, child: i64) {
        *acc = acc.wrapping_add(child);
    }

    #[inline]
    fn finish(&self, acc: &i64) -> i64 {
        *acc
    }

    #[inline]
    fn to_fun(&self, acc: &i64) -> i64 {
        *acc
    }

    #[inline]
    fn identity(&self) -> i64 {
        0
    }

    #[inline]
    fn compose(&self, outer: &i64, inner: &i64) -> i64 {
        outer.wrapping_add(*inner)
    }

    #[inline]
    fn apply(&self, f: &i64, x: i64) -> i64 {
        f.wrapping_add(x)
    }
}

/// Operator carried by internal nodes of an expression tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprOp {
    /// Sum of all children.
    Add,
    /// Product of all children.
    Mul,
}

/// Node label for expression trees: constants at the leaves, operators at
/// internal nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprLabel {
    /// A constant leaf.
    Leaf(i64),
    /// An operator node; its value combines the children's values.
    Op(ExprOp),
}

/// Affine function `x ↦ a·x + b` over wrapping `i64`.
///
/// Affine maps are closed under composition, which is exactly what makes
/// `+`/`×` expression trees contractible: a unary `Add` node with folded
/// constant `c` is `x ↦ x + c`, a unary `Mul` node is `x ↦ c·x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Affine {
    /// Multiplicative coefficient.
    pub a: i64,
    /// Additive constant.
    pub b: i64,
}

impl Affine {
    /// The identity map `x ↦ x`.
    pub const IDENTITY: Affine = Affine { a: 1, b: 0 };

    /// Evaluates the map at `x` (wrapping).
    #[inline]
    pub fn eval(self, x: i64) -> i64 {
        self.a.wrapping_mul(x).wrapping_add(self.b)
    }

    /// `self ∘ inner` (wrapping).
    #[inline]
    pub fn after(self, inner: Affine) -> Affine {
        Affine {
            a: self.a.wrapping_mul(inner.a),
            b: self.a.wrapping_mul(inner.b).wrapping_add(self.b),
        }
    }
}

/// Partial accumulator of an expression node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprAcc {
    /// A constant leaf.
    Leaf(i64),
    /// An operator node with the fold of its already-absorbed children
    /// (`0` for `Add`, `1` for `Mul` when nothing is absorbed yet).
    Partial {
        /// The node's operator.
        op: ExprOp,
        /// Fold of absorbed children under `op`.
        folded: i64,
    },
}

/// Expression-tree evaluation over [`ExprLabel`] nodes.
///
/// Internal nodes may have any arity ≥ 1; `Add` sums its children and `Mul`
/// multiplies them. Arithmetic wraps on overflow.
///
/// ```
/// use dtc_core::{ExprEval, ExprLabel::{Leaf, Op}, ExprOp::{Add, Mul}, Forest};
/// // (2 + 3) * 4
/// let mut f = Forest::new();
/// let root = f.add_root(Op(Mul));
/// let plus = f.add_child(root, Op(Add));
/// f.add_child(plus, Leaf(2));
/// f.add_child(plus, Leaf(3));
/// f.add_child(root, Leaf(4));
/// assert_eq!(*f.contraction().run(&ExprEval).subtree_value(root), 20);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExprEval;

impl Algebra for ExprEval {
    type Label = ExprLabel;
    type Val = i64;
    type Acc = ExprAcc;
    type Fun = Affine;

    #[inline]
    fn init_acc(&self, label: &ExprLabel) -> ExprAcc {
        match *label {
            ExprLabel::Leaf(v) => ExprAcc::Leaf(v),
            ExprLabel::Op(op) => ExprAcc::Partial {
                op,
                folded: match op {
                    ExprOp::Add => 0,
                    ExprOp::Mul => 1,
                },
            },
        }
    }

    #[inline]
    fn absorb(&self, acc: &mut ExprAcc, child: i64) {
        match acc {
            // Reachable by mis-building the input (a leaf-labelled node
            // with children), so fail through the sanctioned macro with a
            // message naming the misuse.
            ExprAcc::Leaf(_) => {
                invariant!(false, "expression leaf cannot have children");
            }
            ExprAcc::Partial { op, folded } => {
                *folded = match op {
                    ExprOp::Add => folded.wrapping_add(child),
                    ExprOp::Mul => folded.wrapping_mul(child),
                }
            }
        }
    }

    #[inline]
    fn finish(&self, acc: &ExprAcc) -> i64 {
        match *acc {
            ExprAcc::Leaf(v) => v,
            ExprAcc::Partial { folded, .. } => folded,
        }
    }

    #[inline]
    fn to_fun(&self, acc: &ExprAcc) -> Affine {
        match *acc {
            ExprAcc::Leaf(_) => {
                invariant!(false, "expression leaf cannot have children");
                Affine::IDENTITY // never reached: the invariant always fails
            }
            ExprAcc::Partial { op, folded } => match op {
                ExprOp::Add => Affine { a: 1, b: folded },
                ExprOp::Mul => Affine { a: folded, b: 0 },
            },
        }
    }

    #[inline]
    fn identity(&self) -> Affine {
        Affine::IDENTITY
    }

    #[inline]
    fn compose(&self, outer: &Affine, inner: &Affine) -> Affine {
        outer.after(*inner)
    }

    #[inline]
    fn apply(&self, f: &Affine, x: i64) -> i64 {
        f.eval(x)
    }
}

/// Path-decomposable extension of an [`Algebra`]: a commutative monoid over
/// *path segments*, letting the batch query engine fold the labels lying on
/// a tree path (for [`crate::Query::Path`] queries).
///
/// Laws: `path_concat` must be associative and commutative with
/// `path_empty` as unit. (Commutativity is required because a path between
/// two arbitrary nodes is folded as two root-ward climbs joined at the
/// LCA, so segment order is not preserved.)
pub trait PathAlgebra: Algebra {
    /// Aggregate over a set of labels on a path.
    type PathVal: Clone;

    /// The single-node segment for one label.
    fn path_of(&self, label: &Self::Label) -> Self::PathVal;

    /// The empty segment (unit of [`PathAlgebra::path_concat`]).
    fn path_empty(&self) -> Self::PathVal;

    /// Joins two segments.
    fn path_concat(&self, a: &Self::PathVal, b: &Self::PathVal) -> Self::PathVal;
}

/// Weighted path length: the (wrapping) sum of node weights on the path.
impl PathAlgebra for SubtreeSum {
    type PathVal = i64;

    #[inline]
    fn path_of(&self, label: &i64) -> i64 {
        *label
    }

    #[inline]
    fn path_empty(&self) -> i64 {
        0
    }

    #[inline]
    fn path_concat(&self, a: &i64, b: &i64) -> i64 {
        a.wrapping_add(*b)
    }
}

/// Hop count: expression labels have no meaningful path sum, so the path
/// aggregate is simply the number of nodes on the path.
impl PathAlgebra for ExprEval {
    type PathVal = u64;

    #[inline]
    fn path_of(&self, _label: &ExprLabel) -> u64 {
        1
    }

    #[inline]
    fn path_empty(&self) -> u64 {
        0
    }

    #[inline]
    fn path_concat(&self, a: &u64, b: &u64) -> u64 {
        a + b
    }
}

/// A `(min, max)` pair of `i64` weights — the carrier of [`MinMax`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extrema {
    /// Smallest weight seen.
    pub min: i64,
    /// Largest weight seen.
    pub max: i64,
}

impl Extrema {
    /// The neutral element: `join` with it is the identity.
    pub const NEUTRAL: Extrema = Extrema {
        min: i64::MAX,
        max: i64::MIN,
    };

    /// The singleton interval `[w, w]`.
    #[inline]
    pub fn of(w: i64) -> Extrema {
        Extrema { min: w, max: w }
    }

    /// Componentwise min/max — the semilattice join.
    #[inline]
    pub fn join(self, other: Extrema) -> Extrema {
        Extrema {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

/// Min/max weight aggregation over `i64` node weights.
///
/// Subtree values are the extrema over the whole subtree; as a
/// [`PathAlgebra`] it answers min/max-weight-on-path queries. Because join
/// is an idempotent commutative semilattice, the edge functions are just
/// pending joins, closed under composition.
///
/// ```
/// use dtc_core::{Extrema, Forest, MinMax};
/// let mut f = Forest::new();
/// let r = f.add_root(5i64);
/// let a = f.add_child(r, -2);
/// f.add_child(a, 9);
/// let c = f.contraction().run(&MinMax);
/// assert_eq!(*c.subtree_value(r), Extrema { min: -2, max: 9 });
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinMax;

impl Algebra for MinMax {
    type Label = i64;
    type Val = Extrema;
    type Acc = Extrema;
    /// A pending join.
    type Fun = Extrema;

    #[inline]
    fn init_acc(&self, label: &i64) -> Extrema {
        Extrema::of(*label)
    }

    #[inline]
    fn absorb(&self, acc: &mut Extrema, child: Extrema) {
        *acc = acc.join(child);
    }

    #[inline]
    fn finish(&self, acc: &Extrema) -> Extrema {
        *acc
    }

    #[inline]
    fn to_fun(&self, acc: &Extrema) -> Extrema {
        *acc
    }

    #[inline]
    fn identity(&self) -> Extrema {
        Extrema::NEUTRAL
    }

    #[inline]
    fn compose(&self, outer: &Extrema, inner: &Extrema) -> Extrema {
        outer.join(*inner)
    }

    #[inline]
    fn apply(&self, f: &Extrema, x: Extrema) -> Extrema {
        f.join(x)
    }
}

/// Min/max weight on the path.
impl PathAlgebra for MinMax {
    type PathVal = Extrema;

    #[inline]
    fn path_of(&self, label: &i64) -> Extrema {
        Extrema::of(*label)
    }

    #[inline]
    fn path_empty(&self) -> Extrema {
        Extrema::NEUTRAL
    }

    #[inline]
    fn path_concat(&self, a: &Extrema, b: &Extrema) -> Extrema {
        a.join(*b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_composition_matches_pointwise() {
        let f = Affine { a: 3, b: 5 };
        let g = Affine { a: -2, b: 7 };
        for x in [-4i64, 0, 1, 9, i64::MAX] {
            assert_eq!(f.after(g).eval(x), f.eval(g.eval(x)));
        }
        assert_eq!(Affine::IDENTITY.after(f), f);
        assert_eq!(f.after(Affine::IDENTITY), f);
    }
}
