//! Static (whole-forest) contraction, the [`ContractOptions`] builder, and
//! the sequential oracle.

use crate::algebra::Algebra;
use crate::arena::{Forest, NONE};
use crate::engine::{Death, Scratch};
use crate::obs::{NoopSink, Phase, Profile, Sink};
use crate::NodeId;
use std::time::Instant;

/// Default coin seed used when [`ContractOptions::seed`] is not called.
pub(crate) const DEFAULT_SEED: u64 = 0x5EED;

/// How a node was retired by the contraction — the *kind* of trace slot it
/// occupies in the replayable contraction DAG.
///
/// Change propagation dispatches on this: a raked slot is re-executed by
/// refolding the node's children and re-delivering its contribution; a
/// compressed slot by re-composing the unary chain; a root slot by
/// re-finishing the component value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Retired as a childless non-root: folded into its parent.
    Raked,
    /// Spliced out of a unary chain; its value is a recorded unary
    /// function of the surviving child.
    Compressed,
    /// Finished as a component root.
    Root,
}

/// Result of contracting a whole forest: final subtree values for every
/// node, per-component aggregates, the round-stamped trace, and the
/// shortcut structure of the contraction DAG (used by
/// [`Contraction::query_batch`]).
pub struct Contraction<A: Algebra> {
    vals: Vec<A::Val>,
    components: Vec<(NodeId, A::Val)>,
    rounds: u32,
    death_round: Vec<u32>,
    /// Working parent at death; `NONE` for finished roots. Strictly
    /// increases in death round along any chain, so climbing it reaches a
    /// root in at most `rounds` hops.
    pub(crate) up: Vec<u32>,
    /// CSR offsets into `hop_victims`, length `n + 1`.
    pub(crate) hop_off: Vec<u32>,
    /// For each node `x`, the nodes spliced out from directly above it —
    /// its successive working parents, bottom to top (ascending death
    /// round). Together with the victims' own (recursive) victim lists
    /// these are exactly the original ancestors strictly between `x` and
    /// `up[x]`.
    pub(crate) hop_victims: Vec<u32>,
    /// How each node was retired (rake / compress / root finish).
    kinds: Vec<SlotKind>,
    profile: Option<Box<Profile>>,
}

impl<A: Algebra> Contraction<A> {
    /// Final value of the subtree rooted at `v`.
    pub fn subtree_value(&self, v: NodeId) -> &A::Val {
        &self.vals[v.index()]
    }

    /// All subtree values, indexed by [`NodeId::index`].
    pub fn values(&self) -> &[A::Val] {
        &self.vals
    }

    /// `(root, aggregate)` for every component of the forest.
    pub fn components(&self) -> &[(NodeId, A::Val)] {
        &self.components
    }

    /// Number of rake/compress rounds the contraction took.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Round (1-based) in which `v` was contracted away — the node's stamp
    /// in the contraction DAG.
    pub fn death_round(&self, v: NodeId) -> u32 {
        self.death_round[v.index()]
    }

    /// `v`'s working parent at the moment it was contracted away, or
    /// `None` if `v` finished as a component root.
    ///
    /// These pointers form a shortcut tree of depth ≤ [`Contraction::rounds`]
    /// over the original forest: each hop skips exactly the nodes that were
    /// compressed out from above `v`. The batch query engine climbs them to
    /// answer root/LCA/path queries in `O(rounds)` per query.
    pub fn trace_parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.up[v.index()];
        (p != NONE).then_some(NodeId(p))
    }

    /// The kind of trace slot `v` occupies in the replayable contraction
    /// DAG: how the engine retired it.
    pub fn slot_kind(&self, v: NodeId) -> SlotKind {
        self.kinds[v.index()]
    }

    /// The nodes that were spliced out from directly above `v` — `v`'s
    /// successive working parents, bottom to top (ascending death round).
    ///
    /// Together with [`Contraction::trace_parent`] this exposes the trace
    /// as a replayable structure: `v`, `trace_victims(v)`,
    /// `trace_parent(v)`, … reconstructs the full original ancestor path
    /// of `v` in `O(rounds)` hops.
    pub fn trace_victims(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let lo = self.hop_off[v.index()] as usize;
        let hi = self.hop_off[v.index() + 1] as usize;
        self.hop_victims[lo..hi].iter().map(|&u| NodeId(u))
    }

    /// Telemetry report collected during the contraction, present only when
    /// the run was configured with [`ContractOptions::profiled`].
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_deref()
    }

    /// Verifies the structural invariants of the recorded trace against the
    /// forest it was built from (`check` feature):
    ///
    /// * parallel arrays sized to the forest, and the hop CSR well-formed
    ///   (`hop_off` monotone from 0 to `hop_victims.len()`);
    /// * **exactly one death per node** — every node carries a round stamp
    ///   ≥ 1 (the engine's kill hook rules out double deaths, and the hop
    ///   lists below rule out duplicate compress records);
    /// * `up[v] = NONE` **iff** `v` is an original root, and otherwise
    ///   `up[v]` is an original-tree ancestor of `v` with a **strictly
    ///   larger death round** — the monotonicity that bounds query climbs
    ///   by the round count;
    /// * hop-CSR partition integrity: each node appears in at most one hop
    ///   list (a node is spliced out from above at most one surviving
    ///   child), every victim in `hop_victims(x)` is a proper original
    ///   ancestor of `x` strictly below `up[x]`, non-root, and listed in
    ///   ascending death round, each dying before `x` itself.
    ///
    /// Returns a descriptive [`InvariantError`](crate::check::InvariantError)
    /// for the first violation. `O(n + hops)` plus one Euler tour of the
    /// forest.
    #[cfg(feature = "check")]
    pub fn validate<L>(&self, forest: &Forest<L>) -> Result<(), crate::check::InvariantError> {
        use crate::check::{ensure, Euler};
        let n = forest.len();
        ensure!(
            self.vals.len() == n
                && self.death_round.len() == n
                && self.up.len() == n
                && self.hop_off.len() == n + 1,
            "trace arrays are not sized to the forest ({n} nodes)"
        );
        let euler = Euler::of(forest)?;

        for v in 0..n as u32 {
            let vi = v as usize;
            ensure!(
                self.death_round[vi] >= 1,
                "node n{v} never died (death round 0)"
            );
            let up = self.up[vi];
            if forest.parent_raw(v) == NONE {
                ensure!(
                    up == NONE,
                    "original root n{v} has trace parent n{up} instead of NONE"
                );
            } else {
                ensure!(up != NONE, "non-root n{v} finished without a trace parent");
                ensure!(
                    (up as usize) < n,
                    "trace parent of n{v} ({up}) is out of range"
                );
                ensure!(
                    euler.is_anc(up, v) && up != v,
                    "trace parent n{up} of n{v} is not a proper ancestor"
                );
                ensure!(
                    self.death_round[up as usize] > self.death_round[vi],
                    "death rounds not strictly increasing along up[]: n{v} (round {}) -> n{up} (round {})",
                    self.death_round[vi],
                    self.death_round[up as usize]
                );
            }
        }

        ensure!(
            self.hop_off[0] == 0 && self.hop_off[n] as usize == self.hop_victims.len(),
            "hop CSR offsets do not span the victim array"
        );
        let mut hosted = vec![false; n];
        for x in 0..n {
            ensure!(
                self.hop_off[x] <= self.hop_off[x + 1],
                "hop CSR offsets not monotone at n{x}"
            );
            let lo = self.hop_off[x] as usize;
            let hi = self.hop_off[x + 1] as usize;
            let up = self.up[x];
            let mut prev_round = 0u32;
            for &victim in &self.hop_victims[lo..hi] {
                ensure!(
                    (victim as usize) < n,
                    "hop victim n{victim} of n{x} is out of range"
                );
                ensure!(
                    !hosted[victim as usize],
                    "node n{victim} appears in two hop lists — not a partition"
                );
                hosted[victim as usize] = true;
                ensure!(
                    forest.parent_raw(victim) != NONE,
                    "original root n{victim} was recorded as compressed"
                );
                ensure!(
                    euler.is_anc(victim, x as u32) && victim != x as u32,
                    "hop victim n{victim} is not a proper ancestor of its host n{x}"
                );
                ensure!(
                    up != NONE && euler.is_anc(up, victim) && up != victim,
                    "hop victim n{victim} of n{x} is not strictly below up[n{x}]"
                );
                let vr = self.death_round[victim as usize];
                ensure!(
                    vr > prev_round,
                    "hop list of n{x} not in strictly ascending death round"
                );
                ensure!(
                    vr < self.death_round[x],
                    "hop victim n{victim} (round {vr}) outlived its surviving child n{x} (round {})",
                    self.death_round[x]
                );
                prev_round = vr;
            }
        }
        Ok(())
    }
}

/// Builder for a contraction run, created by [`Forest::contraction`].
///
/// Collapses the former `contract` / `contract_seeded` /
/// `contract_profiled` / `contract_with` entry points into one fluent
/// configuration:
///
/// ```
/// use dtc_core::{gen, SubtreeSum};
/// let f = gen::random_tree(1_000, 1);
/// // Plain run with defaults:
/// let c = f.contraction().run(&SubtreeSum);
/// // Reproducible coins + telemetry:
/// let p = f.contraction().seed(42).profiled().run(&SubtreeSum);
/// assert_eq!(c.values(), p.values());
/// assert_eq!(p.profile().unwrap().total_retired(), 1_000);
/// ```
#[must_use = "the builder does nothing until `run` is called"]
pub struct ContractOptions<'f, L> {
    forest: &'f Forest<L>,
    seed: u64,
    profiled: bool,
}

impl<L> Forest<L> {
    /// Starts configuring a contraction of this forest; finish with
    /// [`ContractOptions::run`].
    pub fn contraction(&self) -> ContractOptions<'_, L> {
        ContractOptions {
            forest: self,
            seed: DEFAULT_SEED,
            profiled: false,
        }
    }
}

impl<'f, L> ContractOptions<'f, L> {
    /// Uses `seed` for the compress coin flips.
    ///
    /// The result is independent of the seed (the coins only affect *which*
    /// unary nodes are spliced each round, never the algebraic outcome);
    /// exposing it keeps runs reproducible.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Collects a full [`Profile`] — phase latency histograms and per-round
    /// counters — available afterwards via [`Contraction::profile`].
    pub fn profiled(mut self) -> Self {
        self.profiled = true;
        self
    }

    /// Runs the contraction under `alg`.
    pub fn run<A>(self, alg: &A) -> Contraction<A>
    where
        A: Algebra<Label = L>,
    {
        if self.profiled {
            let mut profile = Box::<Profile>::default();
            let mut c = run_contraction(self.forest, alg, self.seed, profile.as_mut());
            c.profile = Some(profile);
            c
        } else {
            run_contraction(self.forest, alg, self.seed, &mut NoopSink)
        }
    }

    /// Runs the contraction, streaming telemetry into a custom [`Sink`]
    /// with static dispatch (phase spans and per-round counters).
    ///
    /// The [`ContractOptions::profiled`] flag is ignored on this path — the
    /// provided sink *is* the telemetry destination.
    pub fn run_with<A, S>(self, alg: &A, sink: &mut S) -> Contraction<A>
    where
        A: Algebra<Label = L>,
        S: Sink,
    {
        run_contraction(self.forest, alg, self.seed, sink)
    }
}

/// The shared contraction runner behind every [`ContractOptions`] path.
fn run_contraction<L, A, S>(forest: &Forest<L>, alg: &A, seed: u64, sink: &mut S) -> Contraction<A>
where
    A: Algebra<Label = L>,
    S: Sink,
{
    let n = forest.len();
    let mut scratch: Scratch<A> = Scratch::default();
    scratch.ensure(n);

    for v in 0..n as u32 {
        let p = forest.parent_raw(v);
        scratch.par[v as usize] = p;
        if p != NONE {
            // Children appear in id order, so the running count is exactly
            // the node's position in the parent's (derived) child list.
            scratch.sib[v as usize] = scratch.count[p as usize];
            scratch.count[p as usize] += 1;
        }
    }
    for v in 0..n {
        scratch.acc[v] = Some(alg.init_acc(forest.label(NodeId(v as u32))));
        scratch.fun[v] = Some(alg.identity());
        scratch.alive[v] = true;
    }

    let active: Vec<u32> = (0..n as u32).collect();
    let outcome = scratch.contract_with(alg, &active, seed, sink);

    let mut out: Vec<Option<A::Val>> = vec![None; n];
    let backsolve_start = if S::ENABLED {
        Some(Instant::now())
    } else {
        None
    };
    scratch.backsolve(alg, &mut out);
    if let Some(t) = backsolve_start {
        sink.phase(Phase::Backsolve, t.elapsed().as_nanos() as u64);
    }
    let vals = out
        .into_iter()
        // lint:allow(panic): the engine runs until every active node dies
        .map(|v| v.expect("every node contracted"))
        .collect();
    let (up, hop_off, hop_victims) = scratch.trace_links(n);
    let kinds = scratch.death[..n]
        .iter()
        .map(|d| match d {
            Death::Raked(_) => SlotKind::Raked,
            Death::Compressed { .. } => SlotKind::Compressed,
            Death::Root(_) => SlotKind::Root,
            // lint:allow(panic): the engine runs until every active node dies
            Death::None => unreachable!("node survived a full contraction"),
        })
        .collect();

    Contraction {
        vals,
        components: outcome.components,
        rounds: outcome.rounds,
        death_round: scratch.death_round,
        up,
        hop_off,
        hop_victims,
        kinds,
        profile: None,
    }
}

impl<L> Forest<L> {
    /// Sequential reference evaluation: an iterative bottom-up fold that
    /// shares only the [`Algebra`] with the contraction engine, making it a
    /// correctness oracle for [`ContractOptions::run`].
    ///
    /// Children are absorbed left-to-right (child-list order) with their
    /// sibling index, so the oracle is valid for ordered algebras too.
    ///
    /// Returns the final subtree value of every node, indexed by
    /// [`NodeId::index`]. Runs in `O(n)` with an explicit stack, so deep
    /// paths cannot overflow the call stack.
    pub fn sequential_fold<A>(&self, alg: &A) -> Vec<A::Val>
    where
        A: Algebra<Label = L>,
    {
        let n = self.len();
        let children = self.build_children();

        // Preorder via explicit stack; reversed, every child precedes its
        // parent, which is exactly the fold order we need.
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<u32> = self.roots().map(|r| r.raw()).collect();
        while let Some(u) = stack.pop() {
            order.push(u);
            stack.extend_from_slice(&children[u as usize]);
        }
        assert_eq!(order.len(), n, "parent links must be acyclic");

        let mut vals: Vec<Option<A::Val>> = vec![None; n];
        for &u in order.iter().rev() {
            let mut acc = alg.init_acc(self.label(NodeId(u)));
            for (i, &c) in children[u as usize].iter().enumerate() {
                // lint:allow(panic): reverse preorder folds children before parents
                let cv = vals[c as usize].clone().expect("children folded first");
                alg.absorb_at(&mut acc, i as u32, cv);
            }
            vals[u as usize] = Some(alg.finish(&acc));
        }
        // lint:allow(panic): the loop above fills every slot
        vals.into_iter().map(|v| v.unwrap()).collect()
    }
}
