//! Static (whole-forest) contraction, the [`ContractOptions`] builder, and
//! the sequential oracle.

use crate::algebra::Algebra;
use crate::arena::{Forest, NONE};
use crate::engine::Scratch;
use crate::obs::{NoopSink, Phase, Profile, Sink};
use crate::NodeId;
use std::time::Instant;

/// Default coin seed used when [`ContractOptions::seed`] is not called.
pub(crate) const DEFAULT_SEED: u64 = 0x5EED;

/// Result of contracting a whole forest: final subtree values for every
/// node, per-component aggregates, the round-stamped trace, and the
/// shortcut structure of the contraction DAG (used by
/// [`Contraction::query_batch`]).
pub struct Contraction<A: Algebra> {
    vals: Vec<A::Val>,
    components: Vec<(NodeId, A::Val)>,
    rounds: u32,
    death_round: Vec<u32>,
    /// Working parent at death; `NONE` for finished roots. Strictly
    /// increases in death round along any chain, so climbing it reaches a
    /// root in at most `rounds` hops.
    pub(crate) up: Vec<u32>,
    /// CSR offsets into `hop_victims`, length `n + 1`.
    pub(crate) hop_off: Vec<u32>,
    /// For each node `x`, the nodes spliced out from directly above it —
    /// its successive working parents, bottom to top (ascending death
    /// round). Together with the victims' own (recursive) victim lists
    /// these are exactly the original ancestors strictly between `x` and
    /// `up[x]`.
    pub(crate) hop_victims: Vec<u32>,
    profile: Option<Box<Profile>>,
}

impl<A: Algebra> Contraction<A> {
    /// Final value of the subtree rooted at `v`.
    pub fn subtree_value(&self, v: NodeId) -> &A::Val {
        &self.vals[v.index()]
    }

    /// All subtree values, indexed by [`NodeId::index`].
    pub fn values(&self) -> &[A::Val] {
        &self.vals
    }

    /// `(root, aggregate)` for every component of the forest.
    pub fn components(&self) -> &[(NodeId, A::Val)] {
        &self.components
    }

    /// Number of rake/compress rounds the contraction took.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Round (1-based) in which `v` was contracted away — the node's stamp
    /// in the contraction DAG.
    pub fn death_round(&self, v: NodeId) -> u32 {
        self.death_round[v.index()]
    }

    /// `v`'s working parent at the moment it was contracted away, or
    /// `None` if `v` finished as a component root.
    ///
    /// These pointers form a shortcut tree of depth ≤ [`Contraction::rounds`]
    /// over the original forest: each hop skips exactly the nodes that were
    /// compressed out from above `v`. The batch query engine climbs them to
    /// answer root/LCA/path queries in `O(rounds)` per query.
    pub fn trace_parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.up[v.index()];
        (p != NONE).then_some(NodeId(p))
    }

    /// Telemetry report collected during the contraction, present only when
    /// the run was configured with [`ContractOptions::profiled`].
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_deref()
    }
}

/// Builder for a contraction run, created by [`Forest::contraction`].
///
/// Collapses the former `contract` / `contract_seeded` /
/// `contract_profiled` / `contract_with` entry points into one fluent
/// configuration:
///
/// ```
/// use dtc_core::{gen, SubtreeSum};
/// let f = gen::random_tree(1_000, 1);
/// // Plain run with defaults:
/// let c = f.contraction().run(&SubtreeSum);
/// // Reproducible coins + telemetry:
/// let p = f.contraction().seed(42).profiled().run(&SubtreeSum);
/// assert_eq!(c.values(), p.values());
/// assert_eq!(p.profile().unwrap().total_retired(), 1_000);
/// ```
#[must_use = "the builder does nothing until `run` is called"]
pub struct ContractOptions<'f, L> {
    forest: &'f Forest<L>,
    seed: u64,
    profiled: bool,
}

impl<L> Forest<L> {
    /// Starts configuring a contraction of this forest; finish with
    /// [`ContractOptions::run`].
    pub fn contraction(&self) -> ContractOptions<'_, L> {
        ContractOptions {
            forest: self,
            seed: DEFAULT_SEED,
            profiled: false,
        }
    }
}

impl<'f, L> ContractOptions<'f, L> {
    /// Uses `seed` for the compress coin flips.
    ///
    /// The result is independent of the seed (the coins only affect *which*
    /// unary nodes are spliced each round, never the algebraic outcome);
    /// exposing it keeps runs reproducible.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Collects a full [`Profile`] — phase latency histograms and per-round
    /// counters — available afterwards via [`Contraction::profile`].
    pub fn profiled(mut self) -> Self {
        self.profiled = true;
        self
    }

    /// Runs the contraction under `alg`.
    pub fn run<A>(self, alg: &A) -> Contraction<A>
    where
        A: Algebra<Label = L>,
    {
        if self.profiled {
            let mut profile = Box::<Profile>::default();
            let mut c = run_contraction(self.forest, alg, self.seed, profile.as_mut());
            c.profile = Some(profile);
            c
        } else {
            run_contraction(self.forest, alg, self.seed, &mut NoopSink)
        }
    }

    /// Runs the contraction, streaming telemetry into a custom [`Sink`]
    /// with static dispatch (phase spans and per-round counters).
    ///
    /// The [`ContractOptions::profiled`] flag is ignored on this path — the
    /// provided sink *is* the telemetry destination.
    pub fn run_with<A, S>(self, alg: &A, sink: &mut S) -> Contraction<A>
    where
        A: Algebra<Label = L>,
        S: Sink,
    {
        run_contraction(self.forest, alg, self.seed, sink)
    }
}

/// The shared contraction runner behind every [`ContractOptions`] path.
fn run_contraction<L, A, S>(forest: &Forest<L>, alg: &A, seed: u64, sink: &mut S) -> Contraction<A>
where
    A: Algebra<Label = L>,
    S: Sink,
{
    let n = forest.len();
    let mut scratch: Scratch<A> = Scratch::default();
    scratch.ensure(n);

    for v in 0..n as u32 {
        let p = forest.parent_raw(v);
        scratch.par[v as usize] = p;
        if p != NONE {
            // Children appear in id order, so the running count is exactly
            // the node's position in the parent's (derived) child list.
            scratch.sib[v as usize] = scratch.count[p as usize];
            scratch.count[p as usize] += 1;
        }
    }
    for v in 0..n {
        scratch.acc[v] = Some(alg.init_acc(forest.label(NodeId(v as u32))));
        scratch.fun[v] = Some(alg.identity());
        scratch.alive[v] = true;
    }

    let active: Vec<u32> = (0..n as u32).collect();
    let outcome = scratch.contract_with(alg, &active, seed, sink);

    let mut out: Vec<Option<A::Val>> = vec![None; n];
    let backsolve_start = if S::ENABLED {
        Some(Instant::now())
    } else {
        None
    };
    scratch.backsolve(alg, &mut out);
    if let Some(t) = backsolve_start {
        sink.phase(Phase::Backsolve, t.elapsed().as_nanos() as u64);
    }
    let vals = out
        .into_iter()
        .map(|v| v.expect("every node contracted"))
        .collect();
    let (up, hop_off, hop_victims) = scratch.trace_links(n);

    Contraction {
        vals,
        components: outcome.components,
        rounds: outcome.rounds,
        death_round: scratch.death_round,
        up,
        hop_off,
        hop_victims,
        profile: None,
    }
}

impl<L> Forest<L> {
    /// Contracts the whole forest under `alg` with a default coin seed.
    #[deprecated(note = "use `forest.contraction().run(&alg)` instead")]
    pub fn contract<A>(&self, alg: &A) -> Contraction<A>
    where
        A: Algebra<Label = L>,
    {
        self.contraction().run(alg)
    }

    /// Contracts the whole forest under `alg`, using `seed` for the
    /// compress coin flips.
    #[deprecated(note = "use `forest.contraction().seed(seed).run(&alg)` instead")]
    pub fn contract_seeded<A>(&self, alg: &A, seed: u64) -> Contraction<A>
    where
        A: Algebra<Label = L>,
    {
        self.contraction().seed(seed).run(alg)
    }

    /// Like contracting with a seed, but also collects a full [`Profile`].
    #[deprecated(note = "use `forest.contraction().seed(seed).profiled().run(&alg)` instead")]
    pub fn contract_profiled<A>(&self, alg: &A, seed: u64) -> Contraction<A>
    where
        A: Algebra<Label = L>,
    {
        self.contraction().seed(seed).profiled().run(alg)
    }

    /// Contracts the whole forest, streaming telemetry into `sink`.
    #[deprecated(note = "use `forest.contraction().seed(seed).run_with(&alg, sink)` instead")]
    pub fn contract_with<A, S>(&self, alg: &A, seed: u64, sink: &mut S) -> Contraction<A>
    where
        A: Algebra<Label = L>,
        S: Sink,
    {
        self.contraction().seed(seed).run_with(alg, sink)
    }

    /// Sequential reference evaluation: an iterative bottom-up fold that
    /// shares only the [`Algebra`] with the contraction engine, making it a
    /// correctness oracle for [`ContractOptions::run`].
    ///
    /// Children are absorbed left-to-right (child-list order) with their
    /// sibling index, so the oracle is valid for ordered algebras too.
    ///
    /// Returns the final subtree value of every node, indexed by
    /// [`NodeId::index`]. Runs in `O(n)` with an explicit stack, so deep
    /// paths cannot overflow the call stack.
    pub fn sequential_fold<A>(&self, alg: &A) -> Vec<A::Val>
    where
        A: Algebra<Label = L>,
    {
        let n = self.len();
        let children = self.build_children();

        // Preorder via explicit stack; reversed, every child precedes its
        // parent, which is exactly the fold order we need.
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<u32> = self.roots().map(|r| r.raw()).collect();
        while let Some(u) = stack.pop() {
            order.push(u);
            stack.extend_from_slice(&children[u as usize]);
        }
        assert_eq!(order.len(), n, "parent links must be acyclic");

        let mut vals: Vec<Option<A::Val>> = vec![None; n];
        for &u in order.iter().rev() {
            let mut acc = alg.init_acc(self.label(NodeId(u)));
            for (i, &c) in children[u as usize].iter().enumerate() {
                let cv = vals[c as usize].clone().expect("children folded first");
                alg.absorb_at(&mut acc, i as u32, cv);
            }
            vals[u as usize] = Some(alg.finish(&acc));
        }
        vals.into_iter().map(|v| v.unwrap()).collect()
    }
}
