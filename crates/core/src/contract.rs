//! Static (whole-forest) contraction and the sequential oracle.

use crate::algebra::Algebra;
use crate::arena::{Forest, NONE};
use crate::engine::Scratch;
use crate::obs::{NoopSink, Phase, Profile, Sink};
use crate::NodeId;
use std::time::Instant;

/// Result of contracting a whole forest: final subtree values for every
/// node, per-component aggregates, and the round-stamped trace.
pub struct Contraction<A: Algebra> {
    vals: Vec<A::Val>,
    components: Vec<(NodeId, A::Val)>,
    rounds: u32,
    death_round: Vec<u32>,
    profile: Option<Box<Profile>>,
}

impl<A: Algebra> Contraction<A> {
    /// Final value of the subtree rooted at `v`.
    pub fn subtree_value(&self, v: NodeId) -> &A::Val {
        &self.vals[v.index()]
    }

    /// All subtree values, indexed by [`NodeId::index`].
    pub fn values(&self) -> &[A::Val] {
        &self.vals
    }

    /// `(root, aggregate)` for every component of the forest.
    pub fn components(&self) -> &[(NodeId, A::Val)] {
        &self.components
    }

    /// Number of rake/compress rounds the contraction took.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Round (1-based) in which `v` was contracted away — the node's stamp
    /// in the contraction DAG.
    pub fn death_round(&self, v: NodeId) -> u32 {
        self.death_round[v.index()]
    }

    /// Telemetry report collected during the contraction, present only when
    /// the forest was contracted via [`Forest::contract_profiled`].
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_deref()
    }
}

impl<L> Forest<L> {
    /// Contracts the whole forest under `alg` with a default coin seed.
    ///
    /// See [`Forest::contract_seeded`] for details.
    pub fn contract<A>(&self, alg: &A) -> Contraction<A>
    where
        A: Algebra<Label = L>,
    {
        self.contract_seeded(alg, 0x5EED)
    }

    /// Contracts the whole forest under `alg`, using `seed` for the
    /// compress coin flips.
    ///
    /// The result is independent of the seed (the coins only affect *which*
    /// unary nodes are spliced each round, never the algebraic outcome);
    /// exposing it keeps runs reproducible.
    ///
    /// ```
    /// use dtc_core::{Forest, SubtreeSum};
    /// let mut f = Forest::new();
    /// let r = f.add_root(5i64);
    /// f.add_child(r, 6);
    /// let c = f.contract_seeded(&SubtreeSum, 123);
    /// assert_eq!(c.components(), &[(r, 11)]);
    /// ```
    pub fn contract_seeded<A>(&self, alg: &A, seed: u64) -> Contraction<A>
    where
        A: Algebra<Label = L>,
    {
        self.contract_with(alg, seed, &mut NoopSink)
    }

    /// Like [`Forest::contract_seeded`], but also collects a full
    /// [`Profile`] — phase latency histograms and per-round counters —
    /// available afterwards via [`Contraction::profile`].
    ///
    /// ```
    /// use dtc_core::{gen, SubtreeSum};
    /// let f = gen::random_tree(1_000, 1);
    /// let c = f.contract_profiled(&SubtreeSum, 0x5EED);
    /// let prof = c.profile().unwrap();
    /// assert_eq!(prof.total_retired(), 1_000);
    /// assert_eq!(prof.max_rounds(), c.rounds());
    /// ```
    pub fn contract_profiled<A>(&self, alg: &A, seed: u64) -> Contraction<A>
    where
        A: Algebra<Label = L>,
    {
        let mut profile = Box::<Profile>::default();
        let mut c = self.contract_with(alg, seed, profile.as_mut());
        c.profile = Some(profile);
        c
    }

    /// Contracts the whole forest, streaming telemetry into `sink`.
    ///
    /// This is the generic entry point behind [`Forest::contract_seeded`]
    /// (no-op sink) and [`Forest::contract_profiled`] ([`Profile`] sink);
    /// pass any custom [`Sink`] to receive phase spans and per-round
    /// counters with static dispatch.
    pub fn contract_with<A, S>(&self, alg: &A, seed: u64, sink: &mut S) -> Contraction<A>
    where
        A: Algebra<Label = L>,
        S: Sink,
    {
        let n = self.len();
        let mut scratch: Scratch<A> = Scratch::default();
        scratch.ensure(n);

        for v in 0..n as u32 {
            let p = self.parent_raw(v);
            scratch.par[v as usize] = p;
            if p != NONE {
                scratch.count[p as usize] += 1;
            }
        }
        for v in 0..n {
            scratch.acc[v] = Some(alg.init_acc(self.label(NodeId(v as u32))));
            scratch.fun[v] = Some(alg.identity());
            scratch.alive[v] = true;
        }

        let active: Vec<u32> = (0..n as u32).collect();
        let outcome = scratch.contract_with(alg, &active, seed, sink);

        let mut out: Vec<Option<A::Val>> = vec![None; n];
        let backsolve_start = if S::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        scratch.backsolve(alg, &mut out);
        if let Some(t) = backsolve_start {
            sink.phase(Phase::Backsolve, t.elapsed().as_nanos() as u64);
        }
        let vals = out
            .into_iter()
            .map(|v| v.expect("every node contracted"))
            .collect();

        Contraction {
            vals,
            components: outcome.components,
            rounds: outcome.rounds,
            death_round: scratch.death_round,
            profile: None,
        }
    }

    /// Sequential reference evaluation: an iterative bottom-up fold that
    /// shares only the [`Algebra`] with the contraction engine, making it a
    /// correctness oracle for [`Forest::contract`].
    ///
    /// Returns the final subtree value of every node, indexed by
    /// [`NodeId::index`]. Runs in `O(n)` with an explicit stack, so deep
    /// paths cannot overflow the call stack.
    pub fn sequential_fold<A>(&self, alg: &A) -> Vec<A::Val>
    where
        A: Algebra<Label = L>,
    {
        let n = self.len();
        let children = self.build_children();

        // Preorder via explicit stack; reversed, every child precedes its
        // parent, which is exactly the fold order we need.
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<u32> = self.roots().map(|r| r.raw()).collect();
        while let Some(u) = stack.pop() {
            order.push(u);
            stack.extend_from_slice(&children[u as usize]);
        }
        assert_eq!(order.len(), n, "parent links must be acyclic");

        let mut vals: Vec<Option<A::Val>> = vec![None; n];
        for &u in order.iter().rev() {
            let mut acc = alg.init_acc(self.label(NodeId(u)));
            for &c in &children[u as usize] {
                let cv = vals[c as usize].clone().expect("children folded first");
                alg.absorb(&mut acc, cv);
            }
            vals[u as usize] = Some(alg.finish(&acc));
        }
        vals.into_iter().map(|v| v.unwrap()).collect()
    }
}
