//! Change propagation over the recorded contraction trace.
//!
//! The round-stamped death trace left behind by a full contraction is a
//! dependency DAG: every rake delivered a contribution to the victim's
//! working parent, and every splice folded a victim's unary function into
//! the surviving chain. [`Replay`] materializes that DAG once — per-slot
//! cached results plus, for every node, an aggregate of its children's
//! contributions — and then re-executes **only the slots whose inputs
//! changed** when a batch of label edits lands:
//!
//! 1. every edited node is seeded into a priority queue keyed by its death
//!    round;
//! 2. slots drain in ascending death round. A raked slot re-runs its fold;
//!    if the recomputed contribution equals the cached one the wave *cuts
//!    off*, otherwise the parent's child-aggregate is patched and the
//!    parent is scheduled. A compressed slot schedules its surviving child
//!    with a pending *refold* (the chain's composed functions are
//!    re-derived bottom-to-top). A root slot re-finishes its value.
//!
//! Because rake victims die strictly before their targets and splice
//! victims strictly before their survivors, every dependency points to a
//! strictly later death round: the single ascending drain processes each
//! slot at most once, and a wave dies out after `O(rounds)` hops — the
//! depth-independence the static round structure was recorded for.
//!
//! Child aggregates come in two flavours, chosen by
//! [`Propagate::INVERTIBLE`]:
//!
//! * **flat** — invertible algebras (e.g. [`SubtreeSum`](crate::SubtreeSum))
//!   keep one merged `Part` per node and patch a changed child by
//!   subtract/re-add in `O(1)`;
//! * **sibling tree** — non-invertible algebras keep a balanced binary
//!   tree over the child slots ([`SibTree`]) and replay an `O(log degree)`
//!   leaf-to-root path, so even a 10⁵-ary star patches one child without
//!   refolding the other 10⁵ − 1.

use crate::algebra::{Algebra, Propagate};
use crate::arena::Forest;
use crate::engine::{Death, Scratch};
use crate::obs::{Phase, Sink};
use crate::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Resolves the final subtree value of `v` from the death trace alone.
///
/// A raked node and a finished root knew their value at death; a
/// compressed node's value is its recorded unary function applied to the
/// value of the child that outlived it. Because working parents strictly
/// outlive their children, the chain has at most one hop per contraction
/// round: `O(rounds)` per call, no per-node value cache to keep coherent.
pub(crate) fn resolve_val<A: Algebra>(alg: &A, death: &[Death<A>], v: u32) -> A::Val {
    let mut f = alg.identity();
    let mut u = v as usize;
    loop {
        match &death[u] {
            Death::Raked(val) | Death::Root(val) => return alg.apply(&f, val.clone()),
            Death::Compressed { child, fun } => {
                f = alg.compose(&f, fun);
                u = *child as usize;
            }
            // lint:allow(panic): resolution only runs on completed traces, where every node carries a death record
            Death::None => unreachable!("resolve_val on a node without a death record"),
        }
    }
}

/// Balanced sibling-accumulation tree over one node's child slots.
///
/// A 1-based heap-shaped array: leaves live at `size + slot` (padded to a
/// power of two with [`Propagate::part_empty`]), internal nodes hold the
/// merge of their children with lower slots on the left, so the root is
/// the in-order aggregate of every slot. Patching one slot remerges only
/// the leaf-to-root path: `O(log degree)`.
#[derive(Clone)]
pub(crate) struct SibTree<P> {
    /// Leaf capacity (power of two, ≥ 1); the root sits at index 1.
    size: usize,
    nodes: Vec<P>,
}

impl<P: Clone> SibTree<P> {
    fn build<A: Propagate<Part = P>>(alg: &A, leaves: Vec<P>) -> Self {
        let size = leaves.len().next_power_of_two().max(1);
        let mut nodes = vec![alg.part_empty(); 2 * size];
        for (i, leaf) in leaves.into_iter().enumerate() {
            nodes[size + i] = leaf;
        }
        for i in (1..size).rev() {
            nodes[i] = alg.part_merge(&nodes[2 * i], &nodes[2 * i + 1]);
        }
        SibTree { size, nodes }
    }

    fn set<A: Propagate<Part = P>>(&mut self, alg: &A, slot: u32, part: P) {
        let mut i = self.size + slot as usize;
        self.nodes[i] = part;
        while i > 1 {
            i >>= 1;
            self.nodes[i] = alg.part_merge(&self.nodes[2 * i], &self.nodes[2 * i + 1]);
        }
    }

    fn root(&self) -> &P {
        &self.nodes[1]
    }
}

/// Per-node aggregates of child contributions, strategy picked at build
/// time by [`Propagate::INVERTIBLE`].
#[derive(Clone)]
pub(crate) enum Kids<A: Propagate> {
    /// One merged `Part` per node; patched by subtract/re-add.
    Flat(Vec<A::Part>),
    /// One sibling tree per node; patched along a leaf-to-root path.
    Trees(Vec<SibTree<A::Part>>),
}

impl<A: Propagate> Kids<A> {
    fn root(&self, u: usize) -> &A::Part {
        match self {
            Kids::Flat(parts) => &parts[u],
            Kids::Trees(trees) => trees[u].root(),
        }
    }

    fn update(&mut self, alg: &A, u: usize, slot: u32, old: A::Val, new: A::Val) {
        match self {
            Kids::Flat(parts) => {
                alg.part_remove(&mut parts[u], slot, old);
                let add = alg.part_of(slot, new);
                parts[u] = alg.part_merge(&parts[u], &add);
            }
            Kids::Trees(trees) => trees[u].set(alg, slot, alg.part_of(slot, new)),
        }
    }
}

/// What one propagation pass did, for [`UpdateStats`](crate::UpdateStats).
pub(crate) struct PropagateOutcome {
    /// Trace slots re-executed (every other slot's result was reused).
    pub replayed: usize,
    /// Distinct death rounds the wave touched — its depth in the trace DAG.
    pub rounds: u32,
}

/// The contraction trace reshaped for replay, plus the caches that make
/// replaying a slot `O(1)`–`O(log degree)` instead of `O(degree)`.
///
/// Built from (and only valid against) one *full* contraction's scratch
/// state; structural edits go through the legacy dirty-set path and flip
/// [`Replay::valid`] off, so the next label-only recompute re-anchors with
/// a fresh contraction before propagating.
pub(crate) struct Replay<A: Propagate> {
    /// `false` until [`Replay::rebuild`] runs against a coherent trace.
    pub valid: bool,
    /// Cached contribution each raked node delivered to its working
    /// parent (`None` for compressed nodes and roots, which deliver
    /// through composed functions instead).
    contrib: Vec<Option<A::Val>>,
    /// For every survivor, the nodes spliced onto it, in ascending death
    /// round — bottom-to-top along the original path, the order their
    /// functions compose in.
    victims: Vec<Vec<u32>>,
    /// Aggregated child contributions per node (minus the surviving
    /// chain's slot for compressed nodes).
    kids: Kids<A>,
    /// Scheduling flags for the current pass; always reset before return.
    affected: Vec<bool>,
    refold: Vec<bool>,
}

impl<A: Propagate> Replay<A> {
    pub fn new() -> Self {
        Replay {
            valid: false,
            contrib: Vec::new(),
            victims: Vec::new(),
            kids: Kids::Flat(Vec::new()),
            affected: Vec::new(),
            refold: Vec::new(),
        }
    }

    /// Rebuilds every table from `scratch`, which must hold the completed
    /// trace of a **full** contraction (every node in the active set).
    /// `O(n + trace)` using one backsolve sweep for child values.
    pub fn rebuild(&mut self, alg: &A, children: &[Vec<u32>], scratch: &Scratch<A>) {
        let n = children.len();
        self.contrib.clear();
        self.contrib.resize(n, None);
        self.victims.clear();
        self.victims.resize(n, Vec::new());
        self.affected.clear();
        self.affected.resize(n, false);
        self.refold.clear();
        self.refold.resize(n, false);

        // `death_order` is chronological, so each victim list comes out in
        // ascending death round without sorting.
        for &u in &scratch.death_order {
            if let Death::Compressed { child, .. } = &scratch.death[u as usize] {
                self.victims[*child as usize].push(u);
            }
        }

        let mut vals: Vec<Option<A::Val>> = vec![None; n];
        scratch.backsolve(alg, &mut vals);
        for u in 0..n {
            if let Death::Raked(val) = &scratch.death[u] {
                let fun = scratch.fun[u]
                    .as_ref()
                    // lint:allow(panic): every raked node carried an edge function at death
                    .expect("raked node has an edge function");
                self.contrib[u] = Some(alg.apply(fun, val.clone()));
            }
        }

        // A compressed node's aggregate excludes the slot of the chain
        // that spliced it out — that chain outlives it and contributes at
        // the grandparent instead.
        let gap_of = |p: usize| match &scratch.death[p] {
            Death::Compressed { .. } => Some(scratch.gap[p]),
            _ => None,
        };
        let child_val = |vals: &[Option<A::Val>], c: u32| {
            vals[c as usize]
                .clone()
                // lint:allow(panic): a full-trace backsolve resolves every node
                .expect("backsolve resolved every child")
        };
        self.kids = if A::INVERTIBLE {
            let mut parts = Vec::with_capacity(n);
            for (p, kids) in children.iter().enumerate() {
                let gap = gap_of(p);
                let mut part = alg.part_empty();
                for (i, &c) in kids.iter().enumerate() {
                    if gap == Some(i as u32) {
                        continue;
                    }
                    let add = alg.part_of(i as u32, child_val(&vals, c));
                    part = alg.part_merge(&part, &add);
                }
                parts.push(part);
            }
            Kids::Flat(parts)
        } else {
            let mut trees = Vec::with_capacity(n);
            for (p, kids) in children.iter().enumerate() {
                let gap = gap_of(p);
                let leaves: Vec<A::Part> = kids
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        if gap == Some(i as u32) {
                            alg.part_empty()
                        } else {
                            alg.part_of(i as u32, child_val(&vals, c))
                        }
                    })
                    .collect();
                trees.push(SibTree::build(alg, leaves));
            }
            Kids::Trees(trees)
        };
        self.valid = true;
    }

    /// Replays the trace slots affected by the edited nodes in `dirty`,
    /// updating death records (and caches) in place so that
    /// [`resolve_val`] afterwards returns post-edit values everywhere.
    ///
    /// Requires `self.valid` — i.e. the trace in `scratch` is the one the
    /// tables were rebuilt from, modulo earlier propagation passes.
    pub fn propagate<S: Sink>(
        &mut self,
        alg: &A,
        forest: &Forest<A::Label>,
        scratch: &mut Scratch<A>,
        dirty: &[u32],
        sink: &mut S,
    ) -> PropagateOutcome {
        let start = if S::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let Replay {
            contrib,
            victims,
            kids,
            affected,
            refold,
            ..
        } = self;

        // Min-heap on (death round, node): dependencies always point to a
        // strictly later round, so one ascending drain visits each
        // affected slot exactly once.
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        for &u in dirty {
            schedule(affected, &mut heap, scratch.death_round[u as usize], u);
        }

        let mut processed: Vec<u32> = Vec::new();
        let (mut rounds, mut last) = (0u32, 0u32);
        while let Some(Reverse((stamp, u))) = heap.pop() {
            let ui = u as usize;
            processed.push(u);
            if rounds == 0 || stamp != last {
                rounds += 1;
                last = stamp;
            }
            if refold[ui] {
                refold_chain(alg, forest, victims, kids, scratch, u);
            }
            enum Slot {
                Raked,
                Compressed(u32),
                Root,
            }
            let slot = match &scratch.death[ui] {
                Death::Raked(_) => Slot::Raked,
                Death::Compressed { child, .. } => Slot::Compressed(*child),
                Death::Root(_) => Slot::Root,
                // lint:allow(panic): the replay was built from a completed trace
                Death::None => unreachable!("propagation reached a node without a death record"),
            };
            match slot {
                Slot::Raked => {
                    let mut acc = alg.init_acc(forest.label(NodeId(u)));
                    alg.absorb_part(&mut acc, kids.root(ui));
                    let val = alg.finish(&acc);
                    let new = alg.apply(
                        scratch.fun[ui]
                            .as_ref()
                            // lint:allow(panic): every raked node carried an edge function at death
                            .expect("raked node has an edge function"),
                        val.clone(),
                    );
                    scratch.death[ui] = Death::Raked(val);
                    if contrib[ui].as_ref() != Some(&new) {
                        let old = contrib[ui]
                            .replace(new.clone())
                            // lint:allow(panic): rebuild caches a contribution for every raked node
                            .expect("raked node has a cached contribution");
                        let p = scratch.death_parent[ui];
                        kids.update(alg, p as usize, scratch.sib[ui], old, new);
                        schedule(affected, &mut heap, scratch.death_round[p as usize], p);
                    }
                    // else: the recorded result still holds — the wave cuts
                    // off and everything above is reused as-is.
                }
                Slot::Compressed(child) => {
                    // The victim's label or children feed the survivor's
                    // composed function; re-derive the whole chain when the
                    // survivor drains (it dies strictly later).
                    refold[child as usize] = true;
                    schedule(
                        affected,
                        &mut heap,
                        scratch.death_round[child as usize],
                        child,
                    );
                }
                Slot::Root => {
                    let mut acc = alg.init_acc(forest.label(NodeId(u)));
                    alg.absorb_part(&mut acc, kids.root(ui));
                    scratch.death[ui] = Death::Root(alg.finish(&acc));
                }
            }
        }

        let replayed = processed.len();
        for u in processed {
            affected[u as usize] = false;
            refold[u as usize] = false;
        }
        if let Some(t) = start {
            sink.phase(Phase::Propagate, t.elapsed().as_nanos() as u64);
        }
        PropagateOutcome { replayed, rounds }
    }
}

/// Enqueues `u` at its death-round `stamp` unless already scheduled; the
/// flag is never reset mid-pass, so each slot drains at most once.
#[inline]
fn schedule(affected: &mut [bool], heap: &mut BinaryHeap<Reverse<(u32, u32)>>, stamp: u32, u: u32) {
    if !affected[u as usize] {
        affected[u as usize] = true;
        heap.push(Reverse((stamp, u)));
    }
}

/// Re-derives the composed functions of `x`'s splice chain, exactly as the
/// engine built them: walking the victims bottom-to-top, each victim's
/// recorded function becomes `to_fun(acc(victim)) ∘ f` (where `f` is the
/// composition so far) and `x`'s edge function accumulates
/// `fun(victim) ∘ that`. Rewrites the victims' death records and `x`'s
/// edge function in place.
fn refold_chain<A: Propagate>(
    alg: &A,
    forest: &Forest<A::Label>,
    victims: &[Vec<u32>],
    kids: &Kids<A>,
    scratch: &mut Scratch<A>,
    x: u32,
) {
    let mut f = alg.identity();
    for &v in &victims[x as usize] {
        let vi = v as usize;
        let mut acc = alg.init_acc(forest.label(NodeId(v)));
        alg.absorb_part(&mut acc, kids.root(vi));
        let g = alg.compose(&alg.to_fun(&acc), &f);
        let fv = scratch.fun[vi]
            .as_ref()
            // lint:allow(panic): every victim carried an edge function at death
            .expect("victim has an edge function")
            .clone();
        scratch.death[vi] = Death::Compressed {
            child: x,
            fun: g.clone(),
        };
        f = alg.compose(&fv, &g);
    }
    scratch.fun[x as usize] = Some(f);
}

impl<A: Propagate> Clone for Replay<A> {
    fn clone(&self) -> Self {
        Replay {
            valid: self.valid,
            contrib: self.contrib.clone(),
            victims: self.victims.clone(),
            kids: self.kids.clone(),
            affected: self.affected.clone(),
            refold: self.refold.clone(),
        }
    }
}
