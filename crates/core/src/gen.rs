//! Deterministic forest generators for tests and benchmarks.

use crate::algebra::{ExprLabel, ExprOp};
use crate::arena::{Forest, NONE};
use crate::NodeId;

pub use crate::rng::XorShift64;

/// A path `0 → 1 → … → n-1` (node 0 is the root) with random weights.
pub fn path(n: usize, seed: u64) -> Forest<i64> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(n);
    let mut prev: Option<NodeId> = None;
    for _ in 0..n {
        let w = rng.weight();
        prev = Some(match prev {
            None => f.add_root(w),
            Some(p) => f.add_child(p, w),
        });
    }
    f
}

/// A star: one root with `n - 1` direct children.
pub fn star(n: usize, seed: u64) -> Forest<i64> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(n);
    if n == 0 {
        return f;
    }
    let root = f.add_root(rng.weight());
    for _ in 1..n {
        let w = rng.weight();
        f.add_child(root, w);
    }
    f
}

/// A caterpillar: a spine path where every spine node also has `legs`
/// leaf children.
pub fn caterpillar(spine: usize, legs: usize, seed: u64) -> Forest<i64> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(spine * (legs + 1));
    let mut prev: Option<NodeId> = None;
    for _ in 0..spine {
        let w = rng.weight();
        let node = match prev {
            None => f.add_root(w),
            Some(p) => f.add_child(p, w),
        };
        for _ in 0..legs {
            let lw = rng.weight();
            f.add_child(node, lw);
        }
        prev = Some(node);
    }
    f
}

/// A complete binary tree in heap order: node `i` is the parent of
/// `2i + 1` and `2i + 2`, giving depth `⌊log₂ n⌋` — the balanced
/// adversary between the path (all depth) and the star (all degree).
pub fn binary_tree(n: usize, seed: u64) -> Forest<i64> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(n);
    for i in 0..n {
        let w = rng.weight();
        if i == 0 {
            f.add_root(w);
        } else {
            f.add_child(NodeId(((i - 1) / 2) as u32), w);
        }
    }
    f
}

/// A broom: a path of `handle` nodes whose far end fans out into
/// `bristles` leaf children — depth *and* degree concentrated in one
/// tree, so an edit at a bristle must climb the whole handle.
pub fn broom(handle: usize, bristles: usize, seed: u64) -> Forest<i64> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(handle + bristles);
    if handle == 0 {
        return f;
    }
    let mut prev = f.add_root(rng.weight());
    for _ in 1..handle {
        let w = rng.weight();
        prev = f.add_child(prev, w);
    }
    for _ in 0..bristles {
        let w = rng.weight();
        f.add_child(prev, w);
    }
    f
}

/// One operation of a [`churn`] edit script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// Detach this (non-root) node from its parent.
    Cut(NodeId),
    /// Attach a previously cut component root under a new parent.
    Link {
        /// The component root being attached.
        child: NodeId,
        /// Its new parent (never inside `child`'s component).
        parent: NodeId,
    },
    /// Replace a node's weight.
    Weight(NodeId, i64),
}

/// A random tree of `n` nodes plus a deterministic storm of `ops`
/// interleaved cut / link / weight operations, each valid at the moment
/// it applies (cuts only hit non-roots, links only re-attach cut-off
/// roots and never create cycles). Exercises the structural-edit fallback
/// path against alternating shape and label churn.
pub fn churn(n: usize, ops: usize, seed: u64) -> (Forest<i64>, Vec<ChurnOp>) {
    let f = random_tree(n, seed);
    let mut rng = XorShift64::new(seed ^ 0xC0FFEE);
    let mut script = Vec::with_capacity(ops);
    if n < 2 {
        return (f, script);
    }
    // Shadow shape so every generated op is legal when replayed in order.
    let mut parent: Vec<u32> = (0..n as u32).map(|v| f.parent_raw(v)).collect();
    let mut loose: Vec<u32> = Vec::new(); // roots created by cuts, not yet relinked
    let root_of = |parent: &[u32], mut v: u32| {
        while parent[v as usize] != NONE {
            v = parent[v as usize];
        }
        v
    };
    for _ in 0..ops {
        let op = match rng.below(3) {
            0 => {
                let v = rng.below(n as u64) as u32;
                if parent[v as usize] == NONE {
                    None
                } else {
                    parent[v as usize] = NONE;
                    loose.push(v);
                    Some(ChurnOp::Cut(NodeId(v)))
                }
            }
            1 if !loose.is_empty() => {
                let i = rng.below(loose.len() as u64) as usize;
                let child = loose[i];
                let p = rng.below(n as u64) as u32;
                if root_of(&parent, p) == child {
                    None
                } else {
                    loose.swap_remove(i);
                    parent[child as usize] = p;
                    Some(ChurnOp::Link {
                        child: NodeId(child),
                        parent: NodeId(p),
                    })
                }
            }
            _ => None,
        };
        // Ineligible draws (cutting a root, linking into the cut-off
        // component, no loose roots) degrade to a weight bump so the
        // script length stays exactly `ops`.
        script.push(
            op.unwrap_or_else(|| ChurnOp::Weight(NodeId(rng.below(n as u64) as u32), rng.weight())),
        );
    }
    (f, script)
}

/// A random recursive tree: node `i > 0` attaches to a uniformly random
/// earlier node, giving expected depth `O(log n)`.
pub fn random_tree(n: usize, seed: u64) -> Forest<i64> {
    random_forest(n, 1, seed)
}

/// Like [`random_tree`] but with `roots` independent components.
///
/// # Panics
/// Panics if `n > 0` and `roots == 0` (a non-empty forest needs a root).
pub fn random_forest(n: usize, roots: usize, seed: u64) -> Forest<i64> {
    assert!(
        roots > 0 || n == 0,
        "random_forest: a non-empty forest needs at least one root"
    );
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(n);
    for i in 0..n {
        let w = rng.weight();
        if i < roots {
            f.add_root(w);
        } else {
            let p = NodeId(rng.below(i as u64) as u32);
            f.add_child(p, w);
        }
    }
    f
}

/// A random binary expression tree with `leaves` constant leaves and
/// `leaves - 1` random `+`/`×` internal nodes (built iteratively, so deep
/// shapes are fine).
pub fn random_expr(leaves: usize, seed: u64) -> Forest<ExprLabel> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(leaves.saturating_mul(2));
    if leaves == 0 {
        return f;
    }
    let mut stack: Vec<(Option<NodeId>, usize)> = vec![(None, leaves)];
    while let Some((parent, k)) = stack.pop() {
        if k == 1 {
            // Small constants keep intermediate products meaningful even
            // though all arithmetic wraps.
            let v = rng.below(7) as i64 - 3;
            let label = ExprLabel::Leaf(v);
            match parent {
                None => f.add_root(label),
                Some(p) => f.add_child(p, label),
            };
        } else {
            let op = if rng.below(2) == 0 {
                ExprOp::Add
            } else {
                ExprOp::Mul
            };
            let node = match parent {
                None => f.add_root(ExprLabel::Op(op)),
                Some(p) => f.add_child(p, ExprLabel::Op(op)),
            };
            let left = 1 + rng.below((k - 1) as u64) as usize;
            stack.push((Some(node), left));
            stack.push((Some(node), k - left));
        }
    }
    f
}
