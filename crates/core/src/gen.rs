//! Deterministic forest generators for tests and benchmarks.

use crate::algebra::{ExprLabel, ExprOp};
use crate::arena::Forest;
use crate::NodeId;

pub use crate::rng::XorShift64;

/// A path `0 → 1 → … → n-1` (node 0 is the root) with random weights.
pub fn path(n: usize, seed: u64) -> Forest<i64> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(n);
    let mut prev: Option<NodeId> = None;
    for _ in 0..n {
        let w = rng.weight();
        prev = Some(match prev {
            None => f.add_root(w),
            Some(p) => f.add_child(p, w),
        });
    }
    f
}

/// A star: one root with `n - 1` direct children.
pub fn star(n: usize, seed: u64) -> Forest<i64> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(n);
    if n == 0 {
        return f;
    }
    let root = f.add_root(rng.weight());
    for _ in 1..n {
        let w = rng.weight();
        f.add_child(root, w);
    }
    f
}

/// A caterpillar: a spine path where every spine node also has `legs`
/// leaf children.
pub fn caterpillar(spine: usize, legs: usize, seed: u64) -> Forest<i64> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(spine * (legs + 1));
    let mut prev: Option<NodeId> = None;
    for _ in 0..spine {
        let w = rng.weight();
        let node = match prev {
            None => f.add_root(w),
            Some(p) => f.add_child(p, w),
        };
        for _ in 0..legs {
            let lw = rng.weight();
            f.add_child(node, lw);
        }
        prev = Some(node);
    }
    f
}

/// A random recursive tree: node `i > 0` attaches to a uniformly random
/// earlier node, giving expected depth `O(log n)`.
pub fn random_tree(n: usize, seed: u64) -> Forest<i64> {
    random_forest(n, 1, seed)
}

/// Like [`random_tree`] but with `roots` independent components.
///
/// # Panics
/// Panics if `n > 0` and `roots == 0` (a non-empty forest needs a root).
pub fn random_forest(n: usize, roots: usize, seed: u64) -> Forest<i64> {
    assert!(
        roots > 0 || n == 0,
        "random_forest: a non-empty forest needs at least one root"
    );
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(n);
    for i in 0..n {
        let w = rng.weight();
        if i < roots {
            f.add_root(w);
        } else {
            let p = NodeId(rng.below(i as u64) as u32);
            f.add_child(p, w);
        }
    }
    f
}

/// A random binary expression tree with `leaves` constant leaves and
/// `leaves - 1` random `+`/`×` internal nodes (built iteratively, so deep
/// shapes are fine).
pub fn random_expr(leaves: usize, seed: u64) -> Forest<ExprLabel> {
    let mut rng = XorShift64::new(seed);
    let mut f = Forest::with_capacity(leaves.saturating_mul(2));
    if leaves == 0 {
        return f;
    }
    let mut stack: Vec<(Option<NodeId>, usize)> = vec![(None, leaves)];
    while let Some((parent, k)) = stack.pop() {
        if k == 1 {
            // Small constants keep intermediate products meaningful even
            // though all arithmetic wraps.
            let v = rng.below(7) as i64 - 3;
            let label = ExprLabel::Leaf(v);
            match parent {
                None => f.add_root(label),
                Some(p) => f.add_child(p, label),
            };
        } else {
            let op = if rng.below(2) == 0 {
                ExprOp::Add
            } else {
                ExprOp::Mul
            };
            let node = match parent {
                None => f.add_root(ExprLabel::Op(op)),
                Some(p) => f.add_child(p, ExprLabel::Op(op)),
            };
            let left = 1 + rng.below((k - 1) as u64) as usize;
            stack.push((Some(node), left));
            stack.push((Some(node), k - left));
        }
    }
    f
}
