//! Ordered (non-commutative) aggregation via sibling-indexed rake.
//!
//! The core [`Algebra`] contract requires `absorb` to be commutative across
//! siblings, because rake retires children in arbitrary round order.
//! [`OrderedRake`] lifts that restriction for any associative monoid
//! ([`SeqMonoid`]): every child contributes through
//! [`Algebra::absorb_at`] with its *sibling index*, and the accumulator
//! keeps contiguous runs of already-absorbed children, coalescing
//! neighbours as they arrive. By the time a node finishes, the runs have
//! merged into a single prefix, so the final value is the fold of the
//! children **in child-list order** — preorder semantics on an engine that
//! never promised an order.
//!
//! Unary functions become two-sided sandwiches `x ↦ pre ⊕ x ⊕ post`, which
//! are closed under composition for any monoid, so compress works
//! unchanged.
//!
//! The shipped instance is [`SeqHash`], a polynomial rolling hash of the
//! preorder label sequence — deliberately non-commutative, which makes it a
//! sharp oracle test for the sibling-index plumbing.

use crate::algebra::{Algebra, Propagate};
use crate::rng::splitmix64;

/// An associative (not necessarily commutative) monoid over sequences of
/// labels, foldable left-to-right.
pub trait SeqMonoid: Clone {
    /// Per-node input label.
    type Label: Clone;
    /// Monoid element (the fold of a contiguous label sequence).
    /// `PartialEq` is inherited from the [`Algebra::Val`] bound so change
    /// propagation can detect unchanged replays.
    type Elem: Clone + PartialEq;

    /// The element of the single-label sequence.
    fn lift(&self, label: &Self::Label) -> Self::Elem;

    /// The element of the empty sequence (unit of [`SeqMonoid::concat`]).
    fn empty(&self) -> Self::Elem;

    /// Concatenation; must be associative with [`SeqMonoid::empty`] as
    /// unit, but need **not** be commutative.
    fn concat(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
}

/// A maximal contiguous run `[start, end)` of absorbed sibling indices,
/// with the fold of their values in index order.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Run<E> {
    start: u32,
    end: u32,
    val: E,
}

/// Accumulator of [`OrderedRake`]: the node's own lifted label plus the
/// coalesced runs of absorbed children, kept sorted and non-adjacent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqAcc<E> {
    own: E,
    runs: Vec<Run<E>>,
}

/// Edge function of [`OrderedRake`]: `x ↦ pre ⊕ x ⊕ post`. Two-sided
/// sandwiches are the closure of "insert the child's value mid-sequence"
/// under composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sandwich<E> {
    /// Prefix folded to the left of the hole.
    pub pre: E,
    /// Suffix folded to the right of the hole.
    pub post: E,
}

/// Adapter turning any [`SeqMonoid`] into an [`Algebra`] with **preorder**
/// semantics: `val(v) = lift(label(v)) ⊕ val(c₀) ⊕ … ⊕ val(cₖ)` with the
/// children in child-list order.
///
/// ```
/// use dtc_core::{Forest, OrderedRake, SeqHash};
/// let mut f = Forest::new();
/// let r = f.add_root(1i64);
/// f.add_child(r, 2);
/// f.add_child(r, 3);
/// let alg = OrderedRake(SeqHash);
/// let c = f.contraction().run(&alg);
/// // The contraction agrees with the sequential left-to-right fold.
/// assert_eq!(c.values(), &f.sequential_fold(&alg)[..]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrderedRake<M>(pub M);

impl<M: SeqMonoid> OrderedRake<M> {
    /// Inserts `val` at sibling index `i`, coalescing with the runs that
    /// end at `i` and/or start at `i + 1`.
    fn insert(&self, acc: &mut SeqAcc<M::Elem>, i: u32, val: M::Elem) {
        self.insert_run(&mut acc.runs, i, i + 1, val);
    }

    /// Inserts the already-folded run `[start, end)`, coalescing with the
    /// runs that end at `start` and/or start at `end`.
    fn insert_run(&self, runs: &mut Vec<Run<M::Elem>>, start: u32, end: u32, val: M::Elem) {
        let pos = runs.partition_point(|r| r.end < start);
        let glue_left = pos < runs.len() && runs[pos].end == start;
        let right = if glue_left { pos + 1 } else { pos };
        let glue_right = right < runs.len() && runs[right].start == end;
        debug_assert!(
            pos >= runs.len() || runs[pos].start >= end || glue_left,
            "sibling run [{start}, {end}) absorbed twice"
        );
        match (glue_left, glue_right) {
            (true, true) => {
                let merged = self
                    .0
                    .concat(&self.0.concat(&runs[pos].val, &val), &runs[right].val);
                runs[pos].val = merged;
                runs[pos].end = runs[right].end;
                runs.remove(right);
            }
            (true, false) => {
                runs[pos].val = self.0.concat(&runs[pos].val, &val);
                runs[pos].end = end;
            }
            (false, true) => {
                runs[right].val = self.0.concat(&val, &runs[right].val);
                runs[right].start = start;
            }
            (false, false) => runs.insert(pos, Run { start, end, val }),
        }
    }
}

impl<M: SeqMonoid> Algebra for OrderedRake<M> {
    type Label = M::Label;
    type Val = M::Elem;
    type Acc = SeqAcc<M::Elem>;
    type Fun = Sandwich<M::Elem>;

    fn init_acc(&self, label: &M::Label) -> SeqAcc<M::Elem> {
        SeqAcc {
            own: self.0.lift(label),
            runs: Vec::new(),
        }
    }

    /// Index-less absorb appends after the last absorbed index; correct
    /// only for strictly in-order callers (e.g. a left-to-right fold).
    fn absorb(&self, acc: &mut SeqAcc<M::Elem>, child: M::Elem) {
        let next = acc.runs.last().map_or(0, |r| r.end);
        self.insert(acc, next, child);
    }

    fn absorb_at(&self, acc: &mut SeqAcc<M::Elem>, index: u32, child: M::Elem) {
        self.insert(acc, index, child);
    }

    fn finish(&self, acc: &SeqAcc<M::Elem>) -> M::Elem {
        debug_assert!(
            acc.runs.len() <= 1 && acc.runs.first().map_or(true, |r| r.start == 0),
            "finish on an accumulator with absorption gaps"
        );
        match acc.runs.first() {
            None => acc.own.clone(),
            Some(r) => self.0.concat(&acc.own, &r.val),
        }
    }

    /// With exactly one child left, the missing sibling index is the unique
    /// gap in the runs, so it can be inferred without being passed in: the
    /// runs are `[0, k)` and/or `[k + 1, n)` for the remaining index `k`.
    fn to_fun(&self, acc: &SeqAcc<M::Elem>) -> Sandwich<M::Elem> {
        debug_assert!(acc.runs.len() <= 2, "more than one absorption gap");
        let mut pre = acc.own.clone();
        let mut post = self.0.empty();
        for r in &acc.runs {
            if r.start == 0 {
                pre = self.0.concat(&pre, &r.val);
            } else {
                post = r.val.clone();
            }
        }
        Sandwich { pre, post }
    }

    fn identity(&self) -> Sandwich<M::Elem> {
        Sandwich {
            pre: self.0.empty(),
            post: self.0.empty(),
        }
    }

    fn compose(&self, outer: &Sandwich<M::Elem>, inner: &Sandwich<M::Elem>) -> Sandwich<M::Elem> {
        Sandwich {
            pre: self.0.concat(&outer.pre, &inner.pre),
            post: self.0.concat(&inner.post, &outer.post),
        }
    }

    fn apply(&self, f: &Sandwich<M::Elem>, x: M::Elem) -> M::Elem {
        self.0.concat(&self.0.concat(&f.pre, &x), &f.post)
    }
}

/// Partial sibling aggregate of [`OrderedRake`] for change propagation: a
/// sorted, coalesced list of absorbed sibling runs (the same shape as the
/// [`SeqAcc`] run list, minus the node's own label). Opaque — built and
/// consumed only through the [`Propagate`] methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunsPart<E>(Vec<Run<E>>);

impl<M: SeqMonoid> Propagate for OrderedRake<M> {
    type Part = RunsPart<M::Elem>;

    fn part_empty(&self) -> RunsPart<M::Elem> {
        RunsPart(Vec::new())
    }

    fn part_of(&self, slot: u32, child: M::Elem) -> RunsPart<M::Elem> {
        RunsPart(vec![Run {
            start: slot,
            end: slot + 1,
            val: child,
        }])
    }

    /// `lo` covers strictly lower sibling slots than `hi`, so the run
    /// lists concatenate; only the boundary pair can coalesce.
    fn part_merge(&self, lo: &RunsPart<M::Elem>, hi: &RunsPart<M::Elem>) -> RunsPart<M::Elem> {
        let mut out = lo.0.clone();
        let mut rest = hi.0.iter();
        if let (Some(last), Some(first)) = (out.last_mut(), hi.0.first()) {
            debug_assert!(last.end <= first.start, "part_merge ranges out of order");
            if last.end == first.start {
                last.val = self.0.concat(&last.val, &first.val);
                last.end = first.end;
                rest.next();
            }
        }
        out.extend(rest.cloned());
        RunsPart(out)
    }

    fn absorb_part(&self, acc: &mut SeqAcc<M::Elem>, part: &RunsPart<M::Elem>) {
        for r in &part.0 {
            self.insert_run(&mut acc.runs, r.start, r.end, r.val.clone());
        }
    }
}

/// Fold of a contiguous label sequence under [`SeqHash`]: the polynomial
/// hash plus `B^len`, which is what makes concatenation O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashSeq {
    /// Polynomial hash of the sequence (wrapping).
    pub hash: u64,
    /// `B.pow(len)` (wrapping), where `len` is the sequence length.
    pub pow: u64,
}

/// Polynomial rolling hash of `i64` label sequences:
/// `h(s · t) = h(s)·B^|t| + h(t)` over wrapping `u64`, with labels mixed
/// through splitmix64 first. Non-commutative by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqHash;

/// The hash base; any odd constant works, this is the FNV-1a prime.
const BASE: u64 = 0x0000_0100_0000_01B3;

impl SeqMonoid for SeqHash {
    type Label = i64;
    type Elem = HashSeq;

    #[inline]
    fn lift(&self, label: &i64) -> HashSeq {
        HashSeq {
            hash: splitmix64(*label as u64),
            pow: BASE,
        }
    }

    #[inline]
    fn empty(&self) -> HashSeq {
        HashSeq { hash: 0, pow: 1 }
    }

    #[inline]
    fn concat(&self, a: &HashSeq, b: &HashSeq) -> HashSeq {
        HashSeq {
            hash: a.hash.wrapping_mul(b.pow).wrapping_add(b.hash),
            pow: a.pow.wrapping_mul(b.pow),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(labels: &[i64]) -> HashSeq {
        labels.iter().fold(SeqHash.empty(), |acc, l| {
            SeqHash.concat(&acc, &SeqHash.lift(l))
        })
    }

    #[test]
    fn hash_concat_is_associative_not_commutative() {
        let (a, b, c) = (h(&[1, 2]), h(&[3]), h(&[4, 5, 6]));
        let left = SeqHash.concat(&SeqHash.concat(&a, &b), &c);
        let right = SeqHash.concat(&a, &SeqHash.concat(&b, &c));
        assert_eq!(left, right);
        assert_eq!(left, h(&[1, 2, 3, 4, 5, 6]));
        assert_ne!(SeqHash.concat(&a, &b), SeqHash.concat(&b, &a));
        assert_eq!(SeqHash.concat(&a, &SeqHash.empty()), a);
        assert_eq!(SeqHash.concat(&SeqHash.empty(), &a), a);
    }

    #[test]
    fn out_of_order_absorption_reassembles_in_order() {
        let alg = OrderedRake(SeqHash);
        let expected = h(&[10, 0, 1, 2, 3, 4]);
        // Absorb sibling indices in a scrambled order.
        for order in [[3u32, 0, 4, 1, 2], [4, 3, 2, 1, 0], [0, 1, 2, 3, 4]] {
            let mut acc = alg.init_acc(&10);
            for &i in &order {
                alg.absorb_at(&mut acc, i, SeqHash.lift(&(i as i64)));
            }
            assert_eq!(alg.finish(&acc), expected, "order {order:?}");
        }
    }

    #[test]
    fn sandwich_matches_direct_insertion() {
        let alg = OrderedRake(SeqHash);
        // Node with children [c0, HOLE, c2]; the unary fun must equal
        // inserting the hole's value between the absorbed neighbours.
        let mut acc = alg.init_acc(&7);
        alg.absorb_at(&mut acc, 0, h(&[100]));
        alg.absorb_at(&mut acc, 2, h(&[300]));
        let fun = alg.to_fun(&acc);
        let x = h(&[200, 201]);
        assert_eq!(alg.apply(&fun, x), h(&[7, 100, 200, 201, 300]));
    }
}
