//! Batch query engine over the recorded contraction trace.
//!
//! A [`QueryBatch`] resolves thousands of heterogeneous queries — subtree
//! aggregates, path aggregates, LCAs, component roots/values — against one
//! [`Contraction`] in a **single pass** over the contraction DAG, instead
//! of walking the tree once per query.
//!
//! The enabling observation: the engine records, for every node, its
//! *working parent at death* ([`Contraction::trace_parent`]). Those
//! pointers form a shortcut tree of depth ≤ rounds (`O(log n)` w.h.p.),
//! and each shortcut hop `x → up(x)` skips the chain of `x`'s successive
//! working parents that were compressed out from directly above it — its
//! *victims*, which the trace records bottom-to-top. The skipped gap is
//! recursive: between two consecutive victims of `x` lie the earlier
//! victim's own victims, and so on. Since a victim always dies strictly
//! before its host, the nesting depth is bounded by the round count, so
//! any point of the original ancestor path is reachable by `O(log n)`
//! shortcut hops plus an `O(log n)`-deep descent through nested victim
//! lists. Everything a query needs is a walk of that structure:
//!
//! * **component root / value** — precomputed for all nodes in the single
//!   context pass, then `O(1)` per query;
//! * **LCA(u, v)** — climb `u`'s shortcut chain to the first hop whose top
//!   is an ancestor of `v` (constant-time ancestor tests via Euler
//!   intervals from the context pass), then descend: binary-search each
//!   victim list for the lowest ancestor of `v` and recurse into the gap
//!   just below it — the first node of `u`'s ancestor path that is also
//!   an ancestor of `v` *is* the LCA;
//! * **path aggregate** — fold labels along both climbs to the LCA. The
//!   context pass precomputes every victim's *closed weight* (its label
//!   joined with its entire recursive gap) and per-hop prefix folds of
//!   those, so a full hop contributes in `O(1)` and the final partial hop
//!   in an `O(log²)` descent. Requires a [`PathAlgebra`].
//!
//! Resolution cost is one `O(n)` context pass per batch plus `O(log² n)`
//! per query, so a 1k-query batch on a 100k-node path costs ~`n` work
//! where 1k naive walks would cost ~`n · k`. Queries are dispatched in
//! ascending death round of their anchor node (queries touching the same
//! region of the DAG run together), and the dispatch loop fans out over
//! scoped threads behind the `parallel` feature.
//!
//! The API is uniformly non-panicking: per-query failures (unknown node
//! ids) come back as per-query `Err`s, cross-component path/LCA queries
//! answer [`Answer::NotConnected`], and batch-level misuse (mismatched
//! forest, stale [`DynForest`](crate::DynForest)) is a batch-level `Err`.
//!
//! ```
//! use dtc_core::{gen, Answer, Query, QueryBatch, SubtreeSum};
//! let f = gen::random_tree(1_000, 7);
//! let c = f.contraction().run(&SubtreeSum);
//! let mut batch = QueryBatch::new();
//! batch
//!     .subtree(dtc_core::NodeId::from_index(10))
//!     .lca(dtc_core::NodeId::from_index(5), dtc_core::NodeId::from_index(900))
//!     .path(dtc_core::NodeId::from_index(5), dtc_core::NodeId::from_index(900));
//! let answers = c.query_batch(&f, &SubtreeSum, &batch).unwrap();
//! assert_eq!(answers.len(), 3);
//! assert!(matches!(answers[1], Ok(Answer::Node(_))));
//! ```

use crate::algebra::{Algebra, PathAlgebra};
use crate::arena::{Forest, NONE};
use crate::contract::Contraction;
use crate::{par, NodeId};
use std::fmt;

/// One query against a contracted forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// Aggregate of the subtree rooted at the node →
    /// [`Answer::Value`].
    Subtree(NodeId),
    /// Fold of the labels on the tree path between the two nodes
    /// (inclusive) → [`Answer::PathValue`], or [`Answer::NotConnected`].
    Path(NodeId, NodeId),
    /// Lowest common ancestor of the two nodes → [`Answer::Node`], or
    /// [`Answer::NotConnected`].
    Lca(NodeId, NodeId),
    /// Root of the node's component → [`Answer::Node`].
    ComponentRoot(NodeId),
    /// Aggregate of the node's whole component → [`Answer::Value`].
    ComponentValue(NodeId),
}

impl Query {
    /// The node whose death round orders this query during dispatch.
    fn anchor(&self) -> NodeId {
        match *self {
            Query::Subtree(v)
            | Query::Path(v, _)
            | Query::Lca(v, _)
            | Query::ComponentRoot(v)
            | Query::ComponentValue(v) => v,
        }
    }
}

/// A batch of mixed queries, resolved together by
/// [`Contraction::query_batch`] or
/// [`DynForest::query_batch`](crate::DynForest::query_batch).
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    queries: Vec<Query>,
}

impl QueryBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `n` queries.
    pub fn with_capacity(n: usize) -> Self {
        QueryBatch {
            queries: Vec::with_capacity(n),
        }
    }

    /// Appends an arbitrary [`Query`].
    pub fn push(&mut self, q: Query) -> &mut Self {
        self.queries.push(q);
        self
    }

    /// Appends a [`Query::Subtree`].
    pub fn subtree(&mut self, v: NodeId) -> &mut Self {
        self.push(Query::Subtree(v))
    }

    /// Appends a [`Query::Path`].
    pub fn path(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.push(Query::Path(u, v))
    }

    /// Appends a [`Query::Lca`].
    pub fn lca(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.push(Query::Lca(u, v))
    }

    /// Appends a [`Query::ComponentRoot`].
    pub fn component_root(&mut self, v: NodeId) -> &mut Self {
        self.push(Query::ComponentRoot(v))
    }

    /// Appends a [`Query::ComponentValue`].
    pub fn component_value(&mut self, v: NodeId) -> &mut Self {
        self.push(Query::ComponentValue(v))
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries, in insertion order (answers come back in this order).
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }
}

impl FromIterator<Query> for QueryBatch {
    fn from_iter<I: IntoIterator<Item = Query>>(iter: I) -> Self {
        QueryBatch {
            queries: iter.into_iter().collect(),
        }
    }
}

impl Extend<Query> for QueryBatch {
    fn extend<I: IntoIterator<Item = Query>>(&mut self, iter: I) {
        self.queries.extend(iter);
    }
}

/// Successful answer to one [`Query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer<V, P> {
    /// A subtree or component aggregate.
    Value(V),
    /// A path aggregate.
    PathValue(P),
    /// A node (LCA or component root).
    Node(NodeId),
    /// The two endpoints of a [`Query::Path`] / [`Query::Lca`] lie in
    /// different components.
    NotConnected,
}

/// Why a query (or a whole batch) could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The query names a node id outside the forest.
    UnknownNode {
        /// The offending id.
        node: NodeId,
        /// Number of nodes in the forest.
        nodes: usize,
    },
    /// The node's cached value is stale (pending edits not yet
    /// recomputed); call [`DynForest::recompute`](crate::DynForest::recompute).
    Stale {
        /// The dirty node.
        node: NodeId,
    },
    /// The [`DynForest`](crate::DynForest) has pending edits; call
    /// [`recompute`](crate::DynForest::recompute) before querying.
    PendingEdits {
        /// Nodes currently marked dirty.
        pending: usize,
    },
    /// The forest passed to [`Contraction::query_batch`] is not the one
    /// that was contracted (node counts differ).
    ForestMismatch {
        /// Nodes in the forest argument.
        forest_nodes: usize,
        /// Nodes in the contraction.
        contraction_nodes: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QueryError::UnknownNode { node, nodes } => {
                write!(f, "query names {node} but the forest has {nodes} nodes")
            }
            QueryError::Stale { node } => {
                write!(f, "{node} has pending updates; call recompute()")
            }
            QueryError::PendingEdits { pending } => {
                write!(
                    f,
                    "forest has {pending} nodes with pending updates; call recompute()"
                )
            }
            QueryError::ForestMismatch {
                forest_nodes,
                contraction_nodes,
            } => write!(
                f,
                "forest has {forest_nodes} nodes but the contraction covered {contraction_nodes}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Per-query result type of a batch resolution under algebra `A`.
pub type QueryOutcome<A> =
    Result<Answer<<A as Algebra>::Val, <A as PathAlgebra>::PathVal>, QueryError>;

/// Per-batch context: one `O(n)` pass over the forest + trace, shared by
/// every query in the batch.
struct Ctx<P> {
    /// Euler entry time (ancestor tests in O(1)).
    tin: Vec<u32>,
    /// Euler exit time.
    tout: Vec<u32>,
    /// Component root of every node.
    root: Vec<u32>,
    /// Prefix folds of victim *closed weights* (label ⊕ entire recursive
    /// gap) within each hop's victim segment, aligned with
    /// `Contraction::hop_victims`.
    hop_pref: Vec<P>,
}

impl<P> Ctx<P> {
    /// `true` iff `a` is an ancestor of `b` (or equal).
    #[inline]
    fn is_anc(&self, a: u32, b: u32) -> bool {
        self.tin[a as usize] <= self.tin[b as usize]
            && self.tout[b as usize] <= self.tout[a as usize]
    }
}

fn build_ctx<A: PathAlgebra>(
    forest: &Forest<A::Label>,
    c: &Contraction<A>,
    alg: &A,
) -> Ctx<A::PathVal> {
    let n = forest.len();
    // Child lists in flat CSR form (one allocation, children in id order —
    // the same order `Forest::build_children` derives).
    let mut kid_off = vec![0u32; n + 1];
    for v in 0..n as u32 {
        let p = forest.parent(NodeId(v));
        if let Some(p) = p {
            kid_off[p.index() + 1] += 1;
        }
    }
    for i in 0..n {
        kid_off[i + 1] += kid_off[i];
    }
    let mut cursor = kid_off.clone();
    let mut kids = vec![0u32; n.saturating_sub(forest.roots().count())];
    for v in 0..n as u32 {
        if let Some(p) = forest.parent(NodeId(v)) {
            kids[cursor[p.index()] as usize] = v;
            cursor[p.index()] += 1;
        }
    }

    let mut tin = vec![0u32; n];
    let mut tout = vec![0u32; n];
    let mut root = vec![0u32; n];
    let mut clock = 0u32;
    let mut stack: Vec<(u32, u32)> = Vec::new();
    for r in forest.roots() {
        let rr = r.raw();
        tin[rr as usize] = clock;
        clock += 1;
        root[rr as usize] = rr;
        stack.push((rr, kid_off[rr as usize]));
        while let Some((u, ci)) = stack.last_mut() {
            let u = *u;
            if *ci < kid_off[u as usize + 1] {
                let k = kids[*ci as usize];
                *ci += 1;
                tin[k as usize] = clock;
                clock += 1;
                root[k as usize] = rr;
                stack.push((k, kid_off[k as usize]));
            } else {
                tout[u as usize] = clock;
                clock += 1;
                stack.pop();
            }
        }
    }
    if crate::check::ENABLED {
        check_euler(forest, &tin, &tout);
    }

    // Closed weight of a victim `y`: C(y) = label(y) ⊕ G(y), where
    // G(y) folds the closed weights of y's own victims — i.e. everything
    // strictly between y and up[y], recursively. A victim dies strictly
    // before its host (the host still has a live child when the victim is
    // spliced), so one sweep in ascending death round completes every G
    // before it is read. Rounds are small, so counting sort.
    let mut host = vec![NONE; n];
    for x in 0..n {
        let (lo, hi) = (c.hop_off[x] as usize, c.hop_off[x + 1] as usize);
        for &vt in &c.hop_victims[lo..hi] {
            host[vt as usize] = x as u32;
        }
    }
    let rounds = c.rounds() as usize;
    let mut by_round: Vec<Vec<u32>> = vec![Vec::new(); rounds + 1];
    for (v, &h) in host.iter().enumerate() {
        if h != NONE {
            by_round[c.death_round(NodeId(v as u32)) as usize].push(v as u32);
        }
    }
    let mut gap: Vec<A::PathVal> = (0..n).map(|_| alg.path_empty()).collect();
    let mut closed: Vec<A::PathVal> = (0..n).map(|_| alg.path_empty()).collect();
    for bucket in &by_round {
        for &y in bucket {
            let yi = y as usize;
            let cy = alg.path_concat(&alg.path_of(forest.label(NodeId(y))), &gap[yi]);
            let h = host[yi] as usize;
            gap[h] = alg.path_concat(&gap[h], &cy);
            closed[yi] = cy;
        }
    }
    let mut hop_pref: Vec<A::PathVal> = Vec::with_capacity(c.hop_victims.len());
    for x in 0..n {
        let (lo, hi) = (c.hop_off[x] as usize, c.hop_off[x + 1] as usize);
        let mut acc = alg.path_empty();
        for &vt in &c.hop_victims[lo..hi] {
            acc = alg.path_concat(&acc, &closed[vt as usize]);
            hop_pref.push(acc.clone());
        }
    }

    Ctx {
        tin,
        tout,
        root,
        hop_pref,
    }
}

/// Euler-interval nesting sweep (`check` feature): every interval is
/// non-empty and every non-root's interval lies strictly inside its
/// parent's — the property the batch engine's `O(1)` ancestor tests and
/// victim-list binary searches rest on. `O(n)` per batch context.
#[cfg(feature = "check")]
fn check_euler<L>(forest: &Forest<L>, tin: &[u32], tout: &[u32]) {
    use crate::check::invariant;
    for v in 0..forest.len() as u32 {
        let vi = v as usize;
        invariant!(
            tin[vi] < tout[vi],
            "Euler interval of n{v} is empty or inverted"
        );
        let p = forest.parent_raw(v);
        if p != NONE {
            let pi = p as usize;
            invariant!(
                tin[pi] < tin[vi] && tout[vi] < tout[pi],
                "Euler interval of n{v} is not nested inside its parent n{p}"
            );
        }
    }
}

#[cfg(not(feature = "check"))]
#[inline(always)]
fn check_euler<L>(_forest: &Forest<L>, _tin: &[u32], _tout: &[u32]) {}

/// Lowest common ancestor via the shortcut chain: climb from `u` until the
/// hop's top is an ancestor of `v`; the LCA then lies in that hop's gap
/// (or is the hop top itself). Within a victim list, "is an ancestor of
/// `v`" is monotone bottom-to-top, so binary-search the first ancestor —
/// but the true LCA may sit *inside* the recursive gap just below it, so
/// descend into the preceding victim's own list and repeat. Each descent
/// moves to a strictly earlier death round, bounding the depth by the
/// round count.
fn lca_raw<A: Algebra, P>(c: &Contraction<A>, ctx: &Ctx<P>, u: u32, v: u32) -> Option<u32> {
    if ctx.root[u as usize] != ctx.root[v as usize] {
        return None;
    }
    if ctx.is_anc(u, v) {
        return Some(u);
    }
    if ctx.is_anc(v, u) {
        return Some(v);
    }
    let mut x = u;
    let mut fallback = loop {
        let nxt = c.up[x as usize];
        debug_assert!(nxt != NONE, "climb passed the component root");
        if ctx.is_anc(nxt, v) {
            break nxt;
        }
        x = nxt;
    };
    // The LCA is the lowest ancestor of `v` in gap(x) ∪ {fallback}.
    loop {
        let (lo, hi) = (
            c.hop_off[x as usize] as usize,
            c.hop_off[x as usize + 1] as usize,
        );
        let seg = &c.hop_victims[lo..hi];
        let idx = seg.partition_point(|&vt| !ctx.is_anc(vt, v));
        if idx == 0 {
            // Nothing lies strictly between a node and its first victim
            // (resp. its shortcut parent, when the list is empty).
            return Some(if seg.is_empty() { fallback } else { seg[0] });
        }
        if idx < seg.len() {
            fallback = seg[idx];
        }
        x = seg[idx - 1];
    }
}

/// Fold of the labels on `[u, w)` — `u` inclusive, the ancestor `w`
/// exclusive — along the shortcut chain; `None` when `u == w`. Full hops
/// cost `O(1)` via the closed-weight prefix aggregates; once `w` falls
/// within a hop's gap, descend through the nested victim lists. All
/// chain nodes are ancestors of `u` and hence pairwise comparable, so
/// "strictly below `w`" is just an Euler `tin` comparison, monotone along
/// each victim list (which ascends the tree, i.e. has decreasing `tin`).
fn seg_to_excl<A: PathAlgebra>(
    forest: &Forest<A::Label>,
    c: &Contraction<A>,
    ctx: &Ctx<A::PathVal>,
    alg: &A,
    u: u32,
    w: u32,
) -> Option<A::PathVal> {
    if u == w {
        return None;
    }
    let mut x = u;
    let mut acc = alg.path_of(forest.label(NodeId(u)));
    // Climb full hops while `w` is above the hop top.
    loop {
        let nxt = c.up[x as usize];
        debug_assert!(nxt != NONE, "segment climb passed the component root");
        let (lo, hi) = (
            c.hop_off[x as usize] as usize,
            c.hop_off[x as usize + 1] as usize,
        );
        if nxt == w {
            // The whole gap lies strictly below `w`.
            if hi > lo {
                acc = alg.path_concat(&acc, &ctx.hop_pref[hi - 1]);
            }
            return Some(acc);
        }
        if ctx.is_anc(nxt, w) {
            // `w` sits strictly inside gap(x): stop climbing and descend.
            break;
        }
        if hi > lo {
            acc = alg.path_concat(&acc, &ctx.hop_pref[hi - 1]);
        }
        acc = alg.path_concat(&acc, &alg.path_of(forest.label(NodeId(nxt))));
        x = nxt;
    }
    // `w` is strictly between `x` and `up[x]`; fold the part of the gap
    // below `w`, descending into nested victim lists as needed.
    loop {
        let (lo, hi) = (
            c.hop_off[x as usize] as usize,
            c.hop_off[x as usize + 1] as usize,
        );
        let seg = &c.hop_victims[lo..hi];
        // Victims strictly below `w` (deeper ⇒ larger tin on a chain).
        let idx = seg.partition_point(|&vt| ctx.tin[vt as usize] > ctx.tin[w as usize]);
        if idx < seg.len() && seg[idx] == w {
            // Everything below `w` in this gap: the closed prefix.
            if idx > 0 {
                acc = alg.path_concat(&acc, &ctx.hop_pref[lo + idx - 1]);
            }
            return Some(acc);
        }
        // `w` nests inside the gap of the victim just below it. `idx ≥ 1`:
        // nothing lies strictly between `x` and its first victim, so `w`
        // below `seg[0]` is impossible here.
        debug_assert!(idx >= 1, "exclusive bound escaped the gap");
        if idx >= 2 {
            acc = alg.path_concat(&acc, &ctx.hop_pref[lo + idx - 2]);
        }
        acc = alg.path_concat(&acc, &alg.path_of(forest.label(NodeId(seg[idx - 1]))));
        x = seg[idx - 1];
    }
}

fn resolve_one<A: PathAlgebra>(
    forest: &Forest<A::Label>,
    c: &Contraction<A>,
    ctx: &Ctx<A::PathVal>,
    alg: &A,
    q: &Query,
) -> QueryOutcome<A> {
    let n = forest.len();
    let check = |v: NodeId| -> Result<u32, QueryError> {
        if v.index() < n {
            Ok(v.raw())
        } else {
            Err(QueryError::UnknownNode { node: v, nodes: n })
        }
    };
    match *q {
        Query::Subtree(v) => {
            let v = check(v)?;
            Ok(Answer::Value(c.values()[v as usize].clone()))
        }
        Query::ComponentRoot(v) => {
            let v = check(v)?;
            Ok(Answer::Node(NodeId(ctx.root[v as usize])))
        }
        Query::ComponentValue(v) => {
            let v = check(v)?;
            Ok(Answer::Value(
                c.values()[ctx.root[v as usize] as usize].clone(),
            ))
        }
        Query::Lca(u, v) => {
            let (u, v) = (check(u)?, check(v)?);
            Ok(match lca_raw(c, ctx, u, v) {
                Some(w) => Answer::Node(NodeId(w)),
                None => Answer::NotConnected,
            })
        }
        Query::Path(u, v) => {
            let (u, v) = (check(u)?, check(v)?);
            let Some(w) = lca_raw(c, ctx, u, v) else {
                return Ok(Answer::NotConnected);
            };
            let mut agg = alg.path_of(forest.label(NodeId(w)));
            if let Some(s) = seg_to_excl(forest, c, ctx, alg, u, w) {
                agg = alg.path_concat(&agg, &s);
            }
            if let Some(s) = seg_to_excl(forest, c, ctx, alg, v, w) {
                agg = alg.path_concat(&agg, &s);
            }
            Ok(Answer::PathValue(agg))
        }
    }
}

impl<A: Algebra> Contraction<A> {
    /// Resolves a whole [`QueryBatch`] in one pass over the recorded
    /// contraction trace.
    ///
    /// `forest` must be the forest this contraction was computed from, and
    /// `alg` the same algebra (both are needed for labels and path folds;
    /// a node-count mismatch is rejected with
    /// [`QueryError::ForestMismatch`]).
    ///
    /// Answers come back in query order. Per-query problems (unknown ids)
    /// surface as per-query `Err`s; path/LCA queries across components
    /// answer [`Answer::NotConnected`]. Nothing panics.
    ///
    /// Queries are dispatched in ascending death round of their anchor
    /// node, so queries touching the same region of the trace resolve
    /// together; with the `parallel` feature the dispatch loop fans out
    /// over scoped threads in query chunks (hence the `Send + Sync`
    /// bounds, which every shipped algebra satisfies).
    pub fn query_batch(
        &self,
        forest: &Forest<A::Label>,
        alg: &A,
        batch: &QueryBatch,
    ) -> Result<Vec<QueryOutcome<A>>, QueryError>
    where
        A: PathAlgebra + Sync,
        A::Label: Sync,
        A::Val: Send + Sync,
        A::PathVal: Send + Sync,
    {
        let n = self.values().len();
        if forest.len() != n {
            return Err(QueryError::ForestMismatch {
                forest_nodes: forest.len(),
                contraction_nodes: n,
            });
        }
        let ctx = build_ctx(forest, self, alg);
        let queries = batch.queries();

        // Dispatch in ascending death round of each query's anchor so
        // queries entering the trace at the same rounds run adjacently.
        let mut slots: Vec<(u32, Option<QueryOutcome<A>>)> =
            (0..queries.len() as u32).map(|i| (i, None)).collect();
        slots.sort_by_key(|&(i, _)| {
            let a = queries[i as usize].anchor();
            if a.index() < n {
                self.death_round(a)
            } else {
                u32::MAX
            }
        });
        par::for_each_indexed(&mut slots, |_, (qi, slot)| {
            *slot = Some(resolve_one(forest, self, &ctx, alg, &queries[*qi as usize]));
        });

        let mut out: Vec<Option<QueryOutcome<A>>> = (0..queries.len()).map(|_| None).collect();
        for (qi, slot) in slots {
            out[qi as usize] = slot;
        }
        Ok(out
            .into_iter()
            // lint:allow(panic): the fan-out fills every slot exactly once
            .map(|o| o.expect("every query resolved"))
            .collect())
    }
}
