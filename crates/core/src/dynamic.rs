//! Batch-dynamic forests via change propagation over the contraction trace.
//!
//! [`DynForest`] keeps, for every node, the final subtree value computed by
//! the last contraction. Structural edits ([`DynForest::batch_cut`],
//! [`DynForest::batch_link`]) and label edits
//! ([`DynForest::batch_update_weights`]) are applied to the shape
//! immediately, but value recomputation is deferred: each edit only *marks
//! dirty* the nodes whose cached values it invalidates — the edited node
//! (for label changes) and its ancestors up to the component root. Because
//! dirty paths are upward-closed, marking stops as soon as it meets an
//! already-dirty node, so overlapping updates in a batch share work.
//!
//! [`DynForest::recompute`] then re-runs rake/compress contraction *only on
//! the dirty set*: a clean child of a dirty node enters the contraction as
//! a pre-absorbed constant (its cached subtree value), exactly as if its
//! whole subtree had already been raked away. For shallow trees this makes
//! an update batch cost `O(Σ (depth × degree))` instead of `O(n)`
//! contraction work — seeding a dirty node still re-absorbs all of its
//! clean children, so very high-degree nodes (stars) pay their degree per
//! update; see ROADMAP for the planned partial-accumulator fix.
//!
//! This is the "affected set" form of the paper's change propagation; the
//! round-stamped trace recorded by the engine is what makes cached values
//! available at every node (via backsolving), not just at the roots.

use crate::algebra::{Algebra, PathAlgebra};
use crate::arena::{Forest, NONE};
use crate::engine::{Death, Scratch};
use crate::obs::{EngineCounters, NoopSink, Phase, Profile};
use crate::query::{QueryBatch, QueryError, QueryOutcome};
use crate::rng::splitmix64;
use crate::NodeId;
use std::fmt;
use std::time::Instant;

/// Why a batch edit was rejected by [`DynForest::try_batch_cut`] /
/// [`DynForest::try_batch_link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditError {
    /// A link named a child that is not a component root.
    NotARoot {
        /// The offending child.
        node: NodeId,
    },
    /// A cut named a node that is already a component root.
    AlreadyRoot {
        /// The offending node.
        node: NodeId,
    },
    /// A link would create a cycle: the requested parent lies inside the
    /// child's own subtree.
    WouldCycle {
        /// The child being linked.
        child: NodeId,
        /// The requested parent.
        parent: NodeId,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EditError::NotARoot { node } => write!(f, "{node} is not a root"),
            EditError::AlreadyRoot { node } => write!(f, "{node} is already a root"),
            EditError::WouldCycle { child, parent } => write!(
                f,
                "linking {child} under {parent} would create a cycle: \
                 parent is inside child's subtree"
            ),
        }
    }
}

impl std::error::Error for EditError {}

/// Statistics returned by [`DynForest::recompute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Nodes whose values were recomputed (the dirty set).
    pub dirty: usize,
    /// Total nodes in the forest.
    pub total: usize,
    /// Rake/compress rounds the re-contraction took.
    pub rounds: u32,
    /// Per-run engine counters (rakes/splices/finishes/coin rejections and
    /// peak frontier) for this recompute; `Some` only when profiling is
    /// enabled via [`DynForest::enable_profiling`].
    pub counters: Option<EngineCounters>,
}

impl fmt::Display for UpdateStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recomputed {} of {} nodes in {} rounds",
            self.dirty, self.total, self.rounds
        )?;
        if let Some(c) = &self.counters {
            write!(
                f,
                " ({} rakes, {} splices, {} finishes, {} coin rejections, peak frontier {})",
                c.rakes, c.splices, c.finishes, c.coin_rejections, c.max_frontier
            )?;
        }
        Ok(())
    }
}

/// A forest supporting batch-dynamic edits with incremental re-contraction.
///
/// ```
/// use dtc_core::{DynForest, Forest, SubtreeSum};
///
/// let mut f = Forest::new();
/// let r = f.add_root(1i64);
/// let a = f.add_child(r, 2);
/// f.add_child(a, 3);
///
/// let mut d = DynForest::new(f, SubtreeSum);
/// assert_eq!(*d.subtree_value(r), 6);
///
/// // Cut `a` off: only `r`'s cached value is invalidated.
/// d.batch_cut(&[a]);
/// let stats = d.recompute();
/// assert_eq!(stats.dirty, 1);
/// assert_eq!(*d.subtree_value(r), 1);
/// assert_eq!(*d.subtree_value(a), 5);
///
/// // Link it back and bump a weight in the same batch.
/// d.batch_link(&[(a, r)]);
/// d.batch_update_weights(&[(r, 100)]);
/// d.recompute();
/// assert_eq!(*d.subtree_value(r), 105);
/// ```
pub struct DynForest<A: Algebra> {
    alg: A,
    forest: Forest<A::Label>,
    children: Vec<Vec<u32>>,
    /// Position of each node in its parent's child list (stale for roots),
    /// so cuts are O(1) instead of a scan of the parent's children.
    child_slot: Vec<u32>,
    subtree: Vec<Option<A::Val>>,
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    scratch: Scratch<A>,
    seed: u64,
    /// Telemetry collector; `Some` once profiling is enabled. Boxed so the
    /// common unprofiled forest stays small.
    profile: Option<Box<Profile>>,
}

impl<A: Algebra> DynForest<A> {
    /// Wraps `forest` and runs the initial full contraction.
    pub fn new(forest: Forest<A::Label>, alg: A) -> Self {
        Self::with_seed(forest, alg, 0xD15EA5E)
    }

    /// Like [`DynForest::new`] with an explicit coin seed (reproducibility).
    pub fn with_seed(forest: Forest<A::Label>, alg: A, seed: u64) -> Self {
        let n = forest.len();
        let children = forest.build_children();
        let mut child_slot = vec![0u32; n];
        for kids in &children {
            for (i, &c) in kids.iter().enumerate() {
                child_slot[c as usize] = i as u32;
            }
        }
        let mut d = DynForest {
            alg,
            forest,
            children,
            child_slot,
            subtree: vec![None; n],
            dirty: vec![true; n],
            dirty_list: (0..n as u32).collect(),
            scratch: Scratch::default(),
            seed,
            profile: None,
        };
        d.recompute();
        d
    }

    /// Turns on telemetry collection: every subsequent batch edit and
    /// [`DynForest::recompute`] reports dirty-mark / plan / apply /
    /// backsolve spans and per-round counters into an internal
    /// [`Profile`], and [`UpdateStats::counters`] becomes `Some`.
    ///
    /// Idempotent; an already-collected profile is kept. The unprofiled
    /// default pays zero overhead (the engine is compiled with a no-op
    /// sink on that path).
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// `true` once [`DynForest::enable_profiling`] has been called.
    pub fn profiling_enabled(&self) -> bool {
        self.profile.is_some()
    }

    /// The accumulated telemetry report, if profiling is enabled.
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_deref()
    }

    /// Detaches and returns the accumulated profile, turning profiling
    /// back off.
    pub fn take_profile(&mut self) -> Option<Profile> {
        self.profile.take().map(|p| *p)
    }

    /// Read access to the underlying forest shape.
    pub fn forest(&self) -> &Forest<A::Label> {
        &self.forest
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.forest.len()
    }

    /// `true` when the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.forest.is_empty()
    }

    /// Number of nodes currently marked dirty (pending [`DynForest::recompute`]).
    pub fn pending(&self) -> usize {
        self.dirty_list.len()
    }

    /// `true` when `v`'s cached value is stale.
    pub fn is_dirty(&self, v: NodeId) -> bool {
        self.dirty[v.index()]
    }

    /// Root of the component containing `v`.
    pub fn root_of(&self, v: NodeId) -> NodeId {
        self.forest.root_of(v)
    }

    /// Final subtree value of `v` as of the last recompute, or an error if
    /// `v` is stale (marked dirty by a pending edit) or out of range.
    ///
    /// This is the explicit-staleness read: a `Err(QueryError::Stale)`
    /// means the cached value would be silently wrong, and the caller must
    /// [`DynForest::recompute`] first.
    pub fn try_subtree_value(&self, v: NodeId) -> Result<&A::Val, QueryError> {
        let n = self.forest.len();
        if v.index() >= n {
            return Err(QueryError::UnknownNode { node: v, nodes: n });
        }
        if self.dirty[v.index()] {
            return Err(QueryError::Stale { node: v });
        }
        Ok(self.subtree[v.index()]
            .as_ref()
            // lint:allow(panic): recompute caches a value for every clean node
            .expect("clean node has a cached value"))
    }

    /// Final subtree value of `v` as of the last recompute.
    ///
    /// # Panics
    /// Panics if `v` is dirty — call [`DynForest::recompute`] first, or use
    /// [`DynForest::try_subtree_value`] to handle staleness without
    /// panicking.
    pub fn subtree_value(&self, v: NodeId) -> &A::Val {
        self.try_subtree_value(v)
            // lint:allow(panic): documented panicking API; try_subtree_value is the fallible form
            .unwrap_or_else(|e| panic!("subtree_value({v}): {e}"))
    }

    /// Aggregate of the component containing `v` (any node of the
    /// component, not just its root), or an error if the component has
    /// pending updates or `v` is out of range.
    ///
    /// Dirty marks are upward-closed, so the component root is clean iff
    /// no edit in the component is pending.
    pub fn try_component_value(&self, v: NodeId) -> Result<&A::Val, QueryError> {
        let n = self.forest.len();
        if v.index() >= n {
            return Err(QueryError::UnknownNode { node: v, nodes: n });
        }
        self.try_subtree_value(self.forest.root_of(v))
    }

    /// Aggregate of the component rooted at `root`.
    ///
    /// # Panics
    /// Panics if `root` is not a root or is dirty; see
    /// [`DynForest::try_component_value`] for the non-panicking form.
    pub fn component_value(&self, root: NodeId) -> &A::Val {
        assert!(
            self.forest.is_root(root),
            "component_value({root}): not a root"
        );
        self.subtree_value(root)
    }

    /// Marks `start` and all its ancestors dirty, stopping early at the
    /// first already-dirty node (whose ancestors are dirty by invariant).
    fn mark_path_dirty(&mut self, start: u32) {
        let mut u = start;
        loop {
            if self.dirty[u as usize] {
                return;
            }
            self.dirty[u as usize] = true;
            self.dirty_list.push(u);
            let p = self.forest.parent_raw(u);
            if p == NONE {
                return;
            }
            u = p;
        }
    }

    /// Detaches `v` from its parent (no validation beyond the root check);
    /// returns the old parent so the cut can be undone.
    fn cut_one(&mut self, v: NodeId) -> Result<u32, EditError> {
        let p = self.forest.parent_raw(v.raw());
        if p == NONE {
            return Err(EditError::AlreadyRoot { node: v });
        }
        let kids = &mut self.children[p as usize];
        let pos = self.child_slot[v.index()] as usize;
        debug_assert_eq!(kids[pos], v.raw(), "child_slot tracks child lists");
        kids.swap_remove(pos);
        if pos < kids.len() {
            self.child_slot[kids[pos] as usize] = pos as u32;
        }
        self.forest.set_parent_raw(v.raw(), NONE);
        self.mark_path_dirty(p);
        Ok(p)
    }

    /// Attaches the root `child` under `parent` after validating both the
    /// rootness and the cycle condition.
    fn link_one(&mut self, child: NodeId, parent: NodeId) -> Result<(), EditError> {
        if !self.forest.is_root(child) {
            return Err(EditError::NotARoot { node: child });
        }
        if self.forest.root_of(parent) == child {
            return Err(EditError::WouldCycle { child, parent });
        }
        self.child_slot[child.index()] = self.children[parent.index()].len() as u32;
        self.children[parent.index()].push(child.raw());
        self.forest.set_parent_raw(child.raw(), parent.raw());
        self.mark_path_dirty(parent.raw());
        Ok(())
    }

    /// Re-attaches a previously cut `child` under its old parent `p`
    /// (rollback path; the link is known valid, so no checks).
    fn relink_unchecked(&mut self, child: NodeId, p: u32) {
        self.child_slot[child.index()] = self.children[p as usize].len() as u32;
        self.children[p as usize].push(child.raw());
        self.forest.set_parent_raw(child.raw(), p);
    }

    /// Cuts each node in `cuts` from its parent, making it a component
    /// root. The cut subtree's cached values stay valid; only the old
    /// ancestors are invalidated.
    ///
    /// Ops apply in order; on the first invalid op ([`EditError::AlreadyRoot`],
    /// including a node cut twice in the same batch) every already-applied
    /// cut is undone and the forest shape is exactly as before the call.
    /// Dirty marks made along the way are **not** undone — they are merely
    /// conservative (the next [`DynForest::recompute`] refreshes values
    /// that were already correct), never wrong. Rollback re-attaches via a
    /// push, and cutting swap-removes, so a failed batch may permute
    /// sibling order; for the commutative [`Algebra`] contract this is
    /// unobservable, but ordered algebras (see
    /// [`OrderedRake`](crate::OrderedRake)) should treat structural edits
    /// as order-perturbing in general.
    pub fn try_batch_cut(&mut self, cuts: &[NodeId]) -> Result<(), EditError> {
        let mark_start = self.profile.as_ref().map(|_| Instant::now());
        let mut applied: Vec<(NodeId, u32)> = Vec::with_capacity(cuts.len());
        for &v in cuts {
            match self.cut_one(v) {
                Ok(p) => applied.push((v, p)),
                Err(e) => {
                    for &(child, p) in applied.iter().rev() {
                        self.relink_unchecked(child, p);
                    }
                    self.record_dirty_mark(mark_start);
                    return Err(e);
                }
            }
        }
        self.record_dirty_mark(mark_start);
        Ok(())
    }

    /// Cuts each node in `cuts` from its parent, making it a component root.
    ///
    /// # Panics
    /// Panics if a node is already a root; use
    /// [`DynForest::try_batch_cut`] for the non-panicking (and
    /// rolled-back) form.
    pub fn batch_cut(&mut self, cuts: &[NodeId]) {
        self.try_batch_cut(cuts)
            // lint:allow(panic): documented panicking API; try_batch_cut is the fallible form
            .unwrap_or_else(|e| panic!("batch_cut: {e}"));
    }

    /// Links each `(child, parent)` pair, attaching the tree rooted at
    /// `child` under `parent`. The linked subtree's cached values stay
    /// valid; only the new ancestors are invalidated.
    ///
    /// Each link walks `parent`'s chain to its root to reject cycles, so a
    /// batch costs `O(k × depth)` before any recomputation; the walk is
    /// kept in release builds because an undetected cycle would hang every
    /// later traversal.
    ///
    /// Ops apply in order — later links may legally build on earlier ones
    /// (chaining freshly linked components). On the first invalid op
    /// ([`EditError::NotARoot`] or [`EditError::WouldCycle`]) every
    /// already-applied link is undone and the forest shape is exactly as
    /// before the call; dirty marks are not undone (conservative, never
    /// wrong).
    pub fn try_batch_link(&mut self, links: &[(NodeId, NodeId)]) -> Result<(), EditError> {
        let mark_start = self.profile.as_ref().map(|_| Instant::now());
        let mut applied: Vec<NodeId> = Vec::with_capacity(links.len());
        for &(child, parent) in links {
            match self.link_one(child, parent) {
                Ok(()) => applied.push(child),
                Err(e) => {
                    for &child in applied.iter().rev() {
                        self.cut_one(child)
                            // lint:allow(panic): rollback of a link we just applied cannot fail
                            .expect("applied link has a parent to cut");
                    }
                    self.record_dirty_mark(mark_start);
                    return Err(e);
                }
            }
        }
        self.record_dirty_mark(mark_start);
        Ok(())
    }

    /// Links each `(child, parent)` pair, attaching the tree rooted at
    /// `child` under `parent`.
    ///
    /// # Panics
    /// Panics if `child` is not a root, or if `parent` lies inside
    /// `child`'s own subtree (which would create a cycle); use
    /// [`DynForest::try_batch_link`] for the non-panicking (and
    /// rolled-back) form.
    pub fn batch_link(&mut self, links: &[(NodeId, NodeId)]) {
        self.try_batch_link(links)
            // lint:allow(panic): documented panicking API; try_batch_link is the fallible form
            .unwrap_or_else(|e| panic!("batch_link: {e}"));
    }

    /// Replaces the labels (weights/operators) of the given nodes.
    pub fn batch_update_weights(&mut self, updates: &[(NodeId, A::Label)]) {
        let mark_start = self.profile.as_ref().map(|_| Instant::now());
        for (v, label) in updates {
            self.forest.set_label(*v, label.clone());
            self.mark_path_dirty(v.raw());
        }
        self.record_dirty_mark(mark_start);
    }

    /// Closes a dirty-mark span opened at the top of a batch edit.
    fn record_dirty_mark(&mut self, start: Option<Instant>) {
        if let (Some(t), Some(p)) = (start, &mut self.profile) {
            p.record_span(Phase::DirtyMark, t.elapsed().as_nanos() as u64);
        }
    }

    /// Re-contracts the dirty set, refreshing all invalidated values.
    ///
    /// Clean children of dirty nodes are absorbed as cached constants, so
    /// the contraction work is proportional to the dirty set plus the
    /// total degree of its nodes, not to the forest.
    pub fn recompute(&mut self) -> UpdateStats {
        let n = self.forest.len();
        if self.dirty_list.is_empty() {
            return UpdateStats {
                dirty: 0,
                total: n,
                rounds: 0,
                counters: self.profile.is_some().then(EngineCounters::default),
            };
        }
        self.seed = splitmix64(self.seed);
        self.scratch.ensure(n);

        let DynForest {
            alg,
            forest,
            children,
            subtree,
            dirty,
            dirty_list,
            scratch,
            seed,
            profile,
            ..
        } = self;

        for &u in dirty_list.iter() {
            let ui = u as usize;
            let p = forest.parent_raw(u);
            debug_assert!(
                p == NONE || dirty[p as usize],
                "dirty set must be upward-closed"
            );
            scratch.par[ui] = p;
            let mut acc = alg.init_acc(forest.label(NodeId(u)));
            let mut live_children = 0u32;
            for (i, &c) in children[ui].iter().enumerate() {
                if dirty[c as usize] {
                    live_children += 1;
                    // The dirty child will rake in later; hand it its
                    // child-list slot so ordered algebras absorb it at the
                    // right position.
                    scratch.sib[c as usize] = i as u32;
                } else {
                    let cached = subtree[c as usize]
                        .clone()
                        // lint:allow(panic): only dirty nodes lose their cache, and dirt is upward-closed
                        .expect("clean child has a cached value");
                    alg.absorb_at(&mut acc, i as u32, cached);
                }
            }
            scratch.count[ui] = live_children;
            scratch.acc[ui] = Some(acc);
            scratch.fun[ui] = Some(alg.identity());
            scratch.alive[ui] = true;
            scratch.death[ui] = Death::None;
            scratch.death_round[ui] = 0;
        }

        // Both arms run the same engine code; the profiled arm pays for
        // telemetry, the default arm is compiled with the no-op sink.
        let outcome = match profile {
            Some(p) => {
                let outcome = scratch.contract_with(alg, dirty_list, *seed, p.as_mut());
                let backsolve_start = Instant::now();
                scratch.backsolve(alg, subtree);
                p.record_span(
                    Phase::Backsolve,
                    backsolve_start.elapsed().as_nanos() as u64,
                );
                outcome
            }
            None => {
                let outcome = scratch.contract_with(alg, dirty_list, *seed, &mut NoopSink);
                scratch.backsolve(alg, subtree);
                outcome
            }
        };

        let stats = UpdateStats {
            dirty: dirty_list.len(),
            total: n,
            rounds: outcome.rounds,
            counters: profile.is_some().then_some(outcome.counters),
        };
        for &u in dirty_list.iter() {
            dirty[u as usize] = false;
        }
        dirty_list.clear();
        stats
    }

    /// Resolves a [`QueryBatch`] against the current forest shape.
    ///
    /// Requires a clean forest: with edits pending the cached values (and
    /// any trace) are stale, so this returns
    /// [`QueryError::PendingEdits`] instead of silently answering from
    /// stale data — call [`DynForest::recompute`] first.
    ///
    /// Internally this runs a fresh full contraction to obtain a
    /// consistent trace. Incremental recomputes deliberately re-contract
    /// only the dirty set, so the merged traces of successive recomputes
    /// are *not* mutually consistent (a clean node's recorded shortcut
    /// parent may predate a cut that later re-routed the path above it);
    /// queries need one coherent trace, and a single `O(n log n)` w.h.p.
    /// contraction amortized over a batch of thousands of queries is the
    /// cheapest way to get one. The answers themselves are still
    /// `O(log n)` each on top of that shared pass.
    pub fn query_batch(&self, batch: &QueryBatch) -> Result<Vec<QueryOutcome<A>>, QueryError>
    where
        A: PathAlgebra + Sync,
        A::Label: Sync,
        A::Val: Send + Sync,
        A::PathVal: Send + Sync,
    {
        if !self.dirty_list.is_empty() {
            return Err(QueryError::PendingEdits {
                pending: self.dirty_list.len(),
            });
        }
        let c = self.forest.contraction().seed(self.seed).run(&self.alg);
        c.query_batch(&self.forest, &self.alg, batch)
    }

    /// Verifies the structural invariants of the dynamic layer
    /// (`check` feature):
    ///
    /// * the underlying arena is well-formed ([`Forest::validate`]);
    /// * **parent/child symmetry** — the derived adjacency is exact: every
    ///   entry of `children[p]` names a node whose parent pointer is `p`
    ///   and whose `child_slot` is its list position, each node appears in
    ///   at most one child list, and the lists cover every non-root;
    /// * **dirty-set coherence** — dirty marks are upward-closed (a dirty
    ///   node's parent is dirty), `dirty_list` is a duplicate-free
    ///   enumeration of exactly the flagged nodes, and every *clean* node
    ///   has a cached subtree value for recompute to absorb.
    ///
    /// Returns a descriptive [`InvariantError`](crate::check::InvariantError)
    /// for the first violation. `O(n)`.
    #[cfg(feature = "check")]
    pub fn validate(&self) -> Result<(), crate::check::InvariantError> {
        use crate::check::ensure;
        self.forest.validate()?;
        let n = self.forest.len();
        ensure!(
            self.children.len() == n
                && self.child_slot.len() == n
                && self.subtree.len() == n
                && self.dirty.len() == n,
            "dynamic side tables are not sized to the forest ({n} nodes)"
        );

        let mut listed = vec![false; n];
        let mut total_children = 0usize;
        for (p, kids) in self.children.iter().enumerate() {
            for (i, &c) in kids.iter().enumerate() {
                ensure!(
                    (c as usize) < n,
                    "children[n{p}] contains out-of-range node {c}"
                );
                ensure!(!listed[c as usize], "node n{c} appears in two child lists");
                listed[c as usize] = true;
                ensure!(
                    self.forest.parent_raw(c) == p as u32,
                    "children[n{p}] lists n{c}, whose parent pointer is {}",
                    self.forest.parent_raw(c)
                );
                ensure!(
                    self.child_slot[c as usize] == i as u32,
                    "child_slot[n{c}] = {} but n{c} sits at position {i} of n{p}'s child list",
                    self.child_slot[c as usize]
                );
                total_children += 1;
            }
        }
        let non_roots = (0..n as u32)
            .filter(|&v| self.forest.parent_raw(v) != NONE)
            .count();
        ensure!(
            total_children == non_roots,
            "child lists hold {total_children} nodes but the forest has {non_roots} non-roots"
        );

        let mut in_list = vec![false; n];
        for &u in &self.dirty_list {
            ensure!(
                (u as usize) < n,
                "dirty_list contains out-of-range node {u}"
            );
            ensure!(!in_list[u as usize], "dirty_list lists n{u} twice");
            in_list[u as usize] = true;
            ensure!(
                self.dirty[u as usize],
                "dirty_list lists n{u}, which is not flagged dirty"
            );
        }
        for v in 0..n as u32 {
            let vi = v as usize;
            if self.dirty[vi] {
                ensure!(
                    in_list[vi],
                    "n{v} is flagged dirty but missing from dirty_list"
                );
                let p = self.forest.parent_raw(v);
                ensure!(
                    p == NONE || self.dirty[p as usize],
                    "dirty set not upward-closed: n{v} is dirty, its parent n{p} is not"
                );
            } else {
                ensure!(
                    self.subtree[vi].is_some(),
                    "clean node n{v} has no cached subtree value"
                );
            }
        }
        Ok(())
    }
}

impl<A: Algebra> Clone for DynForest<A>
where
    A::Label: Clone,
    A::Val: Clone,
{
    fn clone(&self) -> Self {
        DynForest {
            alg: self.alg.clone(),
            forest: self.forest.clone(),
            children: self.children.clone(),
            child_slot: self.child_slot.clone(),
            subtree: self.subtree.clone(),
            dirty: self.dirty.clone(),
            dirty_list: self.dirty_list.clone(),
            scratch: Scratch::default(),
            seed: self.seed,
            profile: self.profile.clone(),
        }
    }
}
