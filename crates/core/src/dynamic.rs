//! Batch-dynamic forests via change propagation over the contraction trace.
//!
//! [`DynForest`] keeps the full round-stamped death trace of the last
//! contraction and treats it as a dependency DAG (see `propagate.rs`).
//! Edits are applied to the shape immediately but value recomputation is
//! deferred:
//!
//! * **label edits** ([`DynForest::batch_update_weights`]) mark only the
//!   edited nodes. [`DynForest::recompute`] then *replays* just the trace
//!   slots whose inputs changed, round by round: a re-executed rake that
//!   reproduces its recorded contribution cuts the wave off, and every
//!   untouched slot's recorded result is reused verbatim. Cached per-node
//!   child aggregates (flat subtract/re-add parts for invertible algebras,
//!   balanced sibling trees otherwise) make each replayed slot
//!   `O(1)`–`O(log degree)`, so an update batch costs
//!   `O(affected × log)` independent of tree depth *and* node degree —
//!   paths and stars propagate as fast as random trees;
//! * **structural edits** ([`DynForest::batch_cut`],
//!   [`DynForest::batch_link`]) rewire the trace itself, so they fall back
//!   to the legacy dirty-set re-contraction: the edit marks the affected
//!   root path, recompute re-runs rake/compress on the dirty set with
//!   clean children entering as pre-resolved constants, and the replay
//!   tables are invalidated. The next label-only recompute re-anchors on
//!   one fresh full contraction before returning to pure propagation.
//!   [`DynForest::set_propagation`] forces the legacy path everywhere,
//!   which is what the differential tests diff against.
//!
//! Values are resolved lazily from the trace (`O(rounds)` per read, no
//! per-node value cache to keep coherent), which is why reads return
//! values rather than references and why *any* pending edit makes every
//! read stale until [`DynForest::recompute`] runs.

use crate::algebra::{PathAlgebra, Propagate};
use crate::arena::{Forest, NONE};
use crate::engine::{Death, Scratch};
use crate::obs::{EngineCounters, NoopSink, Phase, Profile};
use crate::propagate::{resolve_val, Replay};
use crate::query::{QueryBatch, QueryError, QueryOutcome};
use crate::rng::splitmix64;
use crate::NodeId;
use std::fmt;
use std::time::Instant;

/// Why a batch edit was rejected by [`DynForest::try_batch_cut`] /
/// [`DynForest::try_batch_link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditError {
    /// A link named a child that is not a component root.
    NotARoot {
        /// The offending child.
        node: NodeId,
    },
    /// A cut named a node that is already a component root.
    AlreadyRoot {
        /// The offending node.
        node: NodeId,
    },
    /// A link would create a cycle: the requested parent lies inside the
    /// child's own subtree.
    WouldCycle {
        /// The child being linked.
        child: NodeId,
        /// The requested parent.
        parent: NodeId,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EditError::NotARoot { node } => write!(f, "{node} is not a root"),
            EditError::AlreadyRoot { node } => write!(f, "{node} is already a root"),
            EditError::WouldCycle { child, parent } => write!(
                f,
                "linking {child} under {parent} would create a cycle: \
                 parent is inside child's subtree"
            ),
        }
    }
}

impl std::error::Error for EditError {}

/// Statistics returned by [`DynForest::recompute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Nodes carrying pending edit marks when the recompute started.
    pub dirty: usize,
    /// Total nodes in the forest.
    pub total: usize,
    /// Rake/compress rounds of the re-contraction, or — on the
    /// propagation path — the number of distinct trace rounds the replay
    /// wave touched (its depth in the contraction DAG).
    pub rounds: u32,
    /// Trace slots re-executed by this recompute: the affected set of
    /// change propagation, or every contracted node on the legacy and
    /// full-rebuild paths.
    pub replayed_slots: usize,
    /// Trace slots whose recorded results were reused untouched.
    pub reused_slots: usize,
    /// Per-run engine counters (rakes/splices/finishes/coin rejections,
    /// peak frontier, replayed/reused slots) for this recompute; `Some`
    /// only when profiling is enabled via [`DynForest::enable_profiling`].
    pub counters: Option<EngineCounters>,
}

impl fmt::Display for UpdateStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recomputed {} of {} nodes in {} rounds",
            self.dirty, self.total, self.rounds
        )?;
        if self.replayed_slots + self.reused_slots > 0 {
            write!(
                f,
                " ({} slots replayed, {} reused)",
                self.replayed_slots, self.reused_slots
            )?;
        }
        if let Some(c) = &self.counters {
            write!(
                f,
                " ({} rakes, {} splices, {} finishes, {} coin rejections, peak frontier {})",
                c.rakes, c.splices, c.finishes, c.coin_rejections, c.max_frontier
            )?;
        }
        Ok(())
    }
}

/// A forest supporting batch-dynamic edits with incremental recomputation
/// by change propagation.
///
/// ```
/// use dtc_core::{DynForest, Forest, SubtreeSum};
///
/// let mut f = Forest::new();
/// let r = f.add_root(1i64);
/// let a = f.add_child(r, 2);
/// f.add_child(a, 3);
///
/// let mut d = DynForest::new(f, SubtreeSum);
/// assert_eq!(d.subtree_value(r), 6);
///
/// // Cut `a` off: a structural edit, handled by dirty-set re-contraction.
/// d.batch_cut(&[a]);
/// let stats = d.recompute();
/// assert_eq!(stats.dirty, 1);
/// assert_eq!(d.subtree_value(r), 1);
/// assert_eq!(d.subtree_value(a), 5);
///
/// // Link it back and bump a weight in the same batch.
/// d.batch_link(&[(a, r)]);
/// d.batch_update_weights(&[(r, 100)]);
/// d.recompute();
/// assert_eq!(d.subtree_value(r), 105);
///
/// // A label-only batch replays just the affected trace slots.
/// d.batch_update_weights(&[(a, 20)]);
/// let stats = d.recompute();
/// assert!(stats.replayed_slots <= stats.total);
/// assert_eq!(d.subtree_value(r), 123);
/// ```
pub struct DynForest<A: Propagate> {
    alg: A,
    forest: Forest<A::Label>,
    children: Vec<Vec<u32>>,
    /// Position of each node in its parent's child list (stale for roots),
    /// so cuts are O(1) instead of a scan of the parent's children.
    child_slot: Vec<u32>,
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    /// `true` once a cut/link landed since the last recompute; forces the
    /// legacy dirty-set path (the trace no longer matches the shape).
    has_structural: bool,
    /// `false` routes label-only batches through the legacy path too —
    /// the differential-testing baseline.
    use_propagation: bool,
    scratch: Scratch<A>,
    replay: Replay<A>,
    seed: u64,
    /// Telemetry collector; `Some` once profiling is enabled. Boxed so the
    /// common unprofiled forest stays small.
    profile: Option<Box<Profile>>,
}

impl<A: Propagate> DynForest<A> {
    /// Wraps `forest` and runs the initial full contraction (which also
    /// builds the replay tables, so a freshly constructed forest is ready
    /// to propagate).
    pub fn new(forest: Forest<A::Label>, alg: A) -> Self {
        Self::with_seed(forest, alg, 0xD15EA5E)
    }

    /// Like [`DynForest::new`] with an explicit coin seed (reproducibility).
    pub fn with_seed(forest: Forest<A::Label>, alg: A, seed: u64) -> Self {
        let n = forest.len();
        let children = forest.build_children();
        let mut child_slot = vec![0u32; n];
        for kids in &children {
            for (i, &c) in kids.iter().enumerate() {
                child_slot[c as usize] = i as u32;
            }
        }
        let mut d = DynForest {
            alg,
            forest,
            children,
            child_slot,
            dirty: vec![false; n],
            dirty_list: Vec::new(),
            has_structural: false,
            use_propagation: true,
            scratch: Scratch::default(),
            replay: Replay::new(),
            seed,
            profile: None,
        };
        d.rebuild_replay();
        d
    }

    /// Turns on telemetry collection: every subsequent batch edit and
    /// [`DynForest::recompute`] reports dirty-mark / plan / apply /
    /// propagate spans and per-round counters into an internal
    /// [`Profile`], and [`UpdateStats::counters`] becomes `Some`.
    ///
    /// Idempotent; an already-collected profile is kept. The unprofiled
    /// default pays zero overhead (the engine is compiled with a no-op
    /// sink on that path).
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// `true` once [`DynForest::enable_profiling`] has been called.
    pub fn profiling_enabled(&self) -> bool {
        self.profile.is_some()
    }

    /// The accumulated telemetry report, if profiling is enabled.
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_deref()
    }

    /// Detaches and returns the accumulated profile, turning profiling
    /// back off.
    pub fn take_profile(&mut self) -> Option<Profile> {
        self.profile.take().map(|p| *p)
    }

    /// Chooses how label-only batches recompute: `true` (the default)
    /// replays the contraction trace by change propagation; `false`
    /// forces the legacy dirty-set re-contraction everywhere.
    ///
    /// Both paths produce identical values — the legacy path exists as
    /// the differential-testing baseline and as the fallback structural
    /// edits take automatically.
    pub fn set_propagation(&mut self, enabled: bool) {
        self.use_propagation = enabled;
    }

    /// `true` when label-only batches recompute by trace propagation.
    pub fn propagation_enabled(&self) -> bool {
        self.use_propagation
    }

    /// Read access to the underlying forest shape.
    pub fn forest(&self) -> &Forest<A::Label> {
        &self.forest
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.forest.len()
    }

    /// `true` when the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.forest.is_empty()
    }

    /// Number of nodes carrying pending edit marks (label edits mark just
    /// the edited node; cuts/links mark the affected root path).
    pub fn pending(&self) -> usize {
        self.dirty_list.len()
    }

    /// `true` when `v` carries a pending edit mark. Note that with *any*
    /// edit pending every read is stale (see
    /// [`DynForest::try_subtree_value`]), not only reads of marked nodes.
    pub fn is_dirty(&self, v: NodeId) -> bool {
        self.dirty[v.index()]
    }

    /// Root of the component containing `v`.
    pub fn root_of(&self, v: NodeId) -> NodeId {
        self.forest.root_of(v)
    }

    /// Final subtree value of `v` as of the last recompute, or an error if
    /// edits are pending or `v` is out of range.
    ///
    /// Values resolve lazily from the recorded trace (`O(rounds)` per
    /// read). With edits pending the trace no longer matches the forest,
    /// so *every* read returns `Err(QueryError::Stale)` — label edits
    /// deliberately mark only the edited node, leaving no cheap way to
    /// tell which ancestors a pending edit will reach; the caller must
    /// [`DynForest::recompute`] first.
    pub fn try_subtree_value(&self, v: NodeId) -> Result<A::Val, QueryError> {
        let n = self.forest.len();
        if v.index() >= n {
            return Err(QueryError::UnknownNode { node: v, nodes: n });
        }
        if !self.dirty_list.is_empty() {
            return Err(QueryError::Stale { node: v });
        }
        Ok(resolve_val(&self.alg, &self.scratch.death, v.raw()))
    }

    /// Final subtree value of `v` as of the last recompute.
    ///
    /// # Panics
    /// Panics if edits are pending — call [`DynForest::recompute`] first,
    /// or use [`DynForest::try_subtree_value`] to handle staleness without
    /// panicking.
    pub fn subtree_value(&self, v: NodeId) -> A::Val {
        self.try_subtree_value(v)
            // lint:allow(panic): documented panicking API; try_subtree_value is the fallible form
            .unwrap_or_else(|e| panic!("subtree_value({v}): {e}"))
    }

    /// Aggregate of the component containing `v` (any node of the
    /// component, not just its root), or an error if edits are pending or
    /// `v` is out of range.
    pub fn try_component_value(&self, v: NodeId) -> Result<A::Val, QueryError> {
        let n = self.forest.len();
        if v.index() >= n {
            return Err(QueryError::UnknownNode { node: v, nodes: n });
        }
        self.try_subtree_value(self.forest.root_of(v))
    }

    /// Aggregate of the component rooted at `root`.
    ///
    /// # Panics
    /// Panics if `root` is not a root or edits are pending; see
    /// [`DynForest::try_component_value`] for the non-panicking form.
    pub fn component_value(&self, root: NodeId) -> A::Val {
        assert!(
            self.forest.is_root(root),
            "component_value({root}): not a root"
        );
        self.subtree_value(root)
    }

    /// Marks a single node's trace slot as edited (label changes; the
    /// propagation pass finds affected ancestors through the trace, so no
    /// path walk is needed).
    fn mark_dirty(&mut self, u: u32) {
        if !self.dirty[u as usize] {
            self.dirty[u as usize] = true;
            self.dirty_list.push(u);
        }
    }

    /// Marks `start` and all its ancestors dirty, stopping early at the
    /// first already-dirty node. Only structural edits walk paths — the
    /// legacy dirty-set engine they fall back to needs an upward-closed
    /// dirty set.
    fn mark_path_dirty(&mut self, start: u32) {
        let mut u = start;
        loop {
            if self.dirty[u as usize] {
                return;
            }
            self.dirty[u as usize] = true;
            self.dirty_list.push(u);
            let p = self.forest.parent_raw(u);
            if p == NONE {
                return;
            }
            u = p;
        }
    }

    /// Detaches `v` from its parent (no validation beyond the root check);
    /// returns the old parent so the cut can be undone.
    fn cut_one(&mut self, v: NodeId) -> Result<u32, EditError> {
        let p = self.forest.parent_raw(v.raw());
        if p == NONE {
            return Err(EditError::AlreadyRoot { node: v });
        }
        let kids = &mut self.children[p as usize];
        let pos = self.child_slot[v.index()] as usize;
        debug_assert_eq!(kids[pos], v.raw(), "child_slot tracks child lists");
        kids.swap_remove(pos);
        if pos < kids.len() {
            self.child_slot[kids[pos] as usize] = pos as u32;
        }
        self.forest.set_parent_raw(v.raw(), NONE);
        self.has_structural = true;
        self.mark_path_dirty(p);
        Ok(p)
    }

    /// Attaches the root `child` under `parent` after validating both the
    /// rootness and the cycle condition.
    fn link_one(&mut self, child: NodeId, parent: NodeId) -> Result<(), EditError> {
        if !self.forest.is_root(child) {
            return Err(EditError::NotARoot { node: child });
        }
        if self.forest.root_of(parent) == child {
            return Err(EditError::WouldCycle { child, parent });
        }
        self.child_slot[child.index()] = self.children[parent.index()].len() as u32;
        self.children[parent.index()].push(child.raw());
        self.forest.set_parent_raw(child.raw(), parent.raw());
        self.has_structural = true;
        self.mark_path_dirty(parent.raw());
        Ok(())
    }

    /// Re-attaches a previously cut `child` under its old parent `p`
    /// (rollback path; the link is known valid, so no checks).
    fn relink_unchecked(&mut self, child: NodeId, p: u32) {
        self.child_slot[child.index()] = self.children[p as usize].len() as u32;
        self.children[p as usize].push(child.raw());
        self.forest.set_parent_raw(child.raw(), p);
    }

    /// Cuts each node in `cuts` from its parent, making it a component
    /// root. The cut subtree's recorded values stay valid; only the old
    /// ancestors are invalidated.
    ///
    /// Ops apply in order; on the first invalid op ([`EditError::AlreadyRoot`],
    /// including a node cut twice in the same batch) every already-applied
    /// cut is undone and the forest shape is exactly as before the call.
    /// Dirty marks made along the way are **not** undone — they are merely
    /// conservative (the next [`DynForest::recompute`] refreshes values
    /// that were already correct), never wrong. Rollback re-attaches via a
    /// push, and cutting swap-removes, so a failed batch may permute
    /// sibling order; for the commutative [`Algebra`](crate::Algebra)
    /// contract this is unobservable, but ordered algebras (see
    /// [`OrderedRake`](crate::OrderedRake)) should treat structural edits
    /// as order-perturbing in general.
    pub fn try_batch_cut(&mut self, cuts: &[NodeId]) -> Result<(), EditError> {
        let mark_start = self.profile.as_ref().map(|_| Instant::now());
        let mut applied: Vec<(NodeId, u32)> = Vec::with_capacity(cuts.len());
        for &v in cuts {
            match self.cut_one(v) {
                Ok(p) => applied.push((v, p)),
                Err(e) => {
                    for &(child, p) in applied.iter().rev() {
                        self.relink_unchecked(child, p);
                    }
                    self.record_dirty_mark(mark_start);
                    return Err(e);
                }
            }
        }
        self.record_dirty_mark(mark_start);
        Ok(())
    }

    /// Cuts each node in `cuts` from its parent, making it a component root.
    ///
    /// # Panics
    /// Panics if a node is already a root; use
    /// [`DynForest::try_batch_cut`] for the non-panicking (and
    /// rolled-back) form.
    pub fn batch_cut(&mut self, cuts: &[NodeId]) {
        self.try_batch_cut(cuts)
            // lint:allow(panic): documented panicking API; try_batch_cut is the fallible form
            .unwrap_or_else(|e| panic!("batch_cut: {e}"));
    }

    /// Links each `(child, parent)` pair, attaching the tree rooted at
    /// `child` under `parent`. The linked subtree's recorded values stay
    /// valid; only the new ancestors are invalidated.
    ///
    /// Each link walks `parent`'s chain to its root to reject cycles, so a
    /// batch costs `O(k × depth)` before any recomputation; the walk is
    /// kept in release builds because an undetected cycle would hang every
    /// later traversal.
    ///
    /// Ops apply in order — later links may legally build on earlier ones
    /// (chaining freshly linked components). On the first invalid op
    /// ([`EditError::NotARoot`] or [`EditError::WouldCycle`]) every
    /// already-applied link is undone and the forest shape is exactly as
    /// before the call; dirty marks are not undone (conservative, never
    /// wrong).
    pub fn try_batch_link(&mut self, links: &[(NodeId, NodeId)]) -> Result<(), EditError> {
        let mark_start = self.profile.as_ref().map(|_| Instant::now());
        let mut applied: Vec<NodeId> = Vec::with_capacity(links.len());
        for &(child, parent) in links {
            match self.link_one(child, parent) {
                Ok(()) => applied.push(child),
                Err(e) => {
                    for &child in applied.iter().rev() {
                        self.cut_one(child)
                            // lint:allow(panic): rollback of a link we just applied cannot fail
                            .expect("applied link has a parent to cut");
                    }
                    self.record_dirty_mark(mark_start);
                    return Err(e);
                }
            }
        }
        self.record_dirty_mark(mark_start);
        Ok(())
    }

    /// Links each `(child, parent)` pair, attaching the tree rooted at
    /// `child` under `parent`.
    ///
    /// # Panics
    /// Panics if `child` is not a root, or if `parent` lies inside
    /// `child`'s own subtree (which would create a cycle); use
    /// [`DynForest::try_batch_link`] for the non-panicking (and
    /// rolled-back) form.
    pub fn batch_link(&mut self, links: &[(NodeId, NodeId)]) {
        self.try_batch_link(links)
            // lint:allow(panic): documented panicking API; try_batch_link is the fallible form
            .unwrap_or_else(|e| panic!("batch_link: {e}"));
    }

    /// Replaces the labels (weights/operators) of the given nodes. Marks
    /// only the edited nodes: change propagation discovers the affected
    /// ancestors through the trace at [`DynForest::recompute`] time.
    pub fn batch_update_weights(&mut self, updates: &[(NodeId, A::Label)]) {
        let mark_start = self.profile.as_ref().map(|_| Instant::now());
        for (v, label) in updates {
            self.forest.set_label(*v, label.clone());
            self.mark_dirty(v.raw());
        }
        self.record_dirty_mark(mark_start);
    }

    /// Closes a dirty-mark span opened at the top of a batch edit.
    fn record_dirty_mark(&mut self, start: Option<Instant>) {
        if let (Some(t), Some(p)) = (start, &mut self.profile) {
            p.record_span(Phase::DirtyMark, t.elapsed().as_nanos() as u64);
        }
    }

    /// Runs one full contraction over the current shape and rebuilds the
    /// replay tables from its trace; returns the round count and whole-run
    /// engine counters.
    fn rebuild_replay(&mut self) -> (u32, EngineCounters) {
        let n = self.forest.len();
        self.seed = splitmix64(self.seed);
        self.scratch.ensure(n);
        let DynForest {
            alg,
            forest,
            children,
            scratch,
            replay,
            seed,
            profile,
            ..
        } = self;
        for u in 0..n as u32 {
            let ui = u as usize;
            scratch.par[ui] = forest.parent_raw(u);
            scratch.count[ui] = children[ui].len() as u32;
            scratch.acc[ui] = Some(alg.init_acc(forest.label(NodeId(u))));
            scratch.fun[ui] = Some(alg.identity());
            scratch.alive[ui] = true;
            scratch.death[ui] = Death::None;
            scratch.death_round[ui] = 0;
            for (i, &c) in children[ui].iter().enumerate() {
                scratch.sib[c as usize] = i as u32;
            }
        }
        let active: Vec<u32> = (0..n as u32).collect();
        let outcome = match profile {
            Some(p) => scratch.contract_with(alg, &active, *seed, p.as_mut()),
            None => scratch.contract_with(alg, &active, *seed, &mut NoopSink),
        };
        replay.rebuild(alg, children, scratch);
        (outcome.rounds, outcome.counters)
    }

    /// Clears all pending edit marks.
    fn clear_dirty(&mut self) {
        let DynForest {
            dirty, dirty_list, ..
        } = self;
        for &u in dirty_list.iter() {
            dirty[u as usize] = false;
        }
        dirty_list.clear();
    }

    /// Refreshes all values invalidated by pending edits.
    ///
    /// Label-only batches replay the recorded trace by change propagation
    /// (`O(affected × log)`; see the module docs). Batches containing a
    /// cut or link — or any batch when
    /// [`DynForest::set_propagation`]`(false)` is in effect — re-contract
    /// the dirty set instead, with clean children entering as pre-resolved
    /// constants; a structural batch also invalidates the replay tables,
    /// and the next label-only recompute re-anchors on one fresh full
    /// contraction before propagating again.
    pub fn recompute(&mut self) -> UpdateStats {
        let n = self.forest.len();
        let edited = self.dirty_list.len();
        if edited == 0 {
            return UpdateStats {
                dirty: 0,
                total: n,
                rounds: 0,
                replayed_slots: 0,
                reused_slots: 0,
                counters: self.profile.is_some().then(EngineCounters::default),
            };
        }

        if self.use_propagation && !self.has_structural {
            if !self.replay.valid {
                // A structural batch invalidated the replay tables;
                // re-anchor with one full contraction (which also folds the
                // pending label edits in) and return to pure propagation.
                let (rounds, counters) = self.rebuild_replay();
                self.clear_dirty();
                return UpdateStats {
                    dirty: edited,
                    total: n,
                    rounds,
                    replayed_slots: n,
                    reused_slots: 0,
                    counters: self.profile.is_some().then_some(counters),
                };
            }
            let DynForest {
                alg,
                forest,
                scratch,
                replay,
                dirty,
                dirty_list,
                profile,
                ..
            } = self;
            let outcome = match profile {
                Some(p) => replay.propagate(alg, forest, scratch, dirty_list, p.as_mut()),
                None => replay.propagate(alg, forest, scratch, dirty_list, &mut NoopSink),
            };
            for &u in dirty_list.iter() {
                dirty[u as usize] = false;
            }
            dirty_list.clear();
            let counters = profile.is_some().then(|| EngineCounters {
                rounds: outcome.rounds,
                replayed_slots: outcome.replayed as u64,
                reused_slots: (n - outcome.replayed) as u64,
                ..EngineCounters::default()
            });
            return UpdateStats {
                dirty: edited,
                total: n,
                rounds: outcome.rounds,
                replayed_slots: outcome.replayed,
                reused_slots: n - outcome.replayed,
                counters,
            };
        }

        // Legacy dirty-set re-contraction. Label edits mark only the
        // edited node, but the engine needs an upward-closed active set —
        // close over the ancestors first (already-marked paths stop the
        // walk immediately).
        let snapshot: Vec<u32> = self.dirty_list.clone();
        for &u in &snapshot {
            let p = self.forest.parent_raw(u);
            if p != NONE {
                self.mark_path_dirty(p);
            }
        }
        self.seed = splitmix64(self.seed);
        self.scratch.ensure(n);

        let DynForest {
            alg,
            forest,
            children,
            dirty,
            dirty_list,
            has_structural,
            scratch,
            replay,
            seed,
            profile,
            ..
        } = self;

        for &u in dirty_list.iter() {
            let ui = u as usize;
            let p = forest.parent_raw(u);
            debug_assert!(
                p == NONE || dirty[p as usize],
                "dirty set must be upward-closed"
            );
            scratch.par[ui] = p;
            let mut acc = alg.init_acc(forest.label(NodeId(u)));
            let mut live_children = 0u32;
            for (i, &c) in children[ui].iter().enumerate() {
                if dirty[c as usize] {
                    live_children += 1;
                    // The dirty child will rake in later; hand it its
                    // child-list slot so ordered algebras absorb it at the
                    // right position.
                    scratch.sib[c as usize] = i as u32;
                } else {
                    // A clean child's whole subtree is clean, so its
                    // recorded chain still resolves to its exact value.
                    let cached = resolve_val(alg, &scratch.death, c);
                    alg.absorb_at(&mut acc, i as u32, cached);
                }
            }
            scratch.count[ui] = live_children;
            scratch.acc[ui] = Some(acc);
            scratch.fun[ui] = Some(alg.identity());
            scratch.alive[ui] = true;
            scratch.death[ui] = Death::None;
            scratch.death_round[ui] = 0;
        }

        // Both arms run the same engine code; the profiled arm pays for
        // telemetry, the default arm is compiled with the no-op sink.
        let outcome = match profile {
            Some(p) => scratch.contract_with(alg, dirty_list, *seed, p.as_mut()),
            None => scratch.contract_with(alg, dirty_list, *seed, &mut NoopSink),
        };
        // The dirty-set run left a mixed-generation trace the replay
        // tables no longer describe; rebuild lazily at the next
        // label-only recompute so a burst of structural batches pays for
        // one re-anchor, not one per batch.
        replay.valid = false;
        *has_structural = false;

        let recomputed = dirty_list.len();
        let stats = UpdateStats {
            dirty: recomputed,
            total: n,
            rounds: outcome.rounds,
            replayed_slots: recomputed,
            reused_slots: n - recomputed,
            counters: profile.is_some().then_some(outcome.counters),
        };
        for &u in dirty_list.iter() {
            dirty[u as usize] = false;
        }
        dirty_list.clear();
        stats
    }

    /// Resolves a [`QueryBatch`] against the current forest shape.
    ///
    /// Requires a clean forest: with edits pending the recorded trace is
    /// stale, so this returns [`QueryError::PendingEdits`] instead of
    /// silently answering from stale data — call
    /// [`DynForest::recompute`] first.
    ///
    /// Internally this runs a fresh full contraction to obtain a
    /// consistent trace. Incremental recomputes deliberately re-contract
    /// only the dirty set, so the merged traces of successive recomputes
    /// are *not* mutually consistent (a clean node's recorded shortcut
    /// parent may predate a cut that later re-routed the path above it);
    /// queries need one coherent trace, and a single `O(n log n)` w.h.p.
    /// contraction amortized over a batch of thousands of queries is the
    /// cheapest way to get one. The answers themselves are still
    /// `O(log n)` each on top of that shared pass.
    pub fn query_batch(&self, batch: &QueryBatch) -> Result<Vec<QueryOutcome<A>>, QueryError>
    where
        A: PathAlgebra + Sync,
        A::Label: Sync,
        A::Val: Send + Sync,
        A::PathVal: Send + Sync,
    {
        if !self.dirty_list.is_empty() {
            return Err(QueryError::PendingEdits {
                pending: self.dirty_list.len(),
            });
        }
        let c = self.forest.contraction().seed(self.seed).run(&self.alg);
        c.query_batch(&self.forest, &self.alg, batch)
    }

    /// Verifies the structural invariants of the dynamic layer
    /// (`check` feature):
    ///
    /// * the underlying arena is well-formed ([`Forest::validate`]);
    /// * **parent/child symmetry** — the derived adjacency is exact: every
    ///   entry of `children[p]` names a node whose parent pointer is `p`
    ///   and whose `child_slot` is its list position, each node appears in
    ///   at most one child list, and the lists cover every non-root;
    /// * **edit-mark coherence** — `dirty_list` is a duplicate-free
    ///   enumeration of exactly the flagged nodes. (Edit marks are *not*
    ///   upward-closed: label edits mark only the edited node, and change
    ///   propagation finds the ancestors through the trace.)
    ///
    /// Returns a descriptive [`InvariantError`](crate::check::InvariantError)
    /// for the first violation. `O(n)`.
    #[cfg(feature = "check")]
    pub fn validate(&self) -> Result<(), crate::check::InvariantError> {
        use crate::check::ensure;
        self.forest.validate()?;
        let n = self.forest.len();
        ensure!(
            self.children.len() == n && self.child_slot.len() == n && self.dirty.len() == n,
            "dynamic side tables are not sized to the forest ({n} nodes)"
        );

        let mut listed = vec![false; n];
        let mut total_children = 0usize;
        for (p, kids) in self.children.iter().enumerate() {
            for (i, &c) in kids.iter().enumerate() {
                ensure!(
                    (c as usize) < n,
                    "children[n{p}] contains out-of-range node {c}"
                );
                ensure!(!listed[c as usize], "node n{c} appears in two child lists");
                listed[c as usize] = true;
                ensure!(
                    self.forest.parent_raw(c) == p as u32,
                    "children[n{p}] lists n{c}, whose parent pointer is {}",
                    self.forest.parent_raw(c)
                );
                ensure!(
                    self.child_slot[c as usize] == i as u32,
                    "child_slot[n{c}] = {} but n{c} sits at position {i} of n{p}'s child list",
                    self.child_slot[c as usize]
                );
                total_children += 1;
            }
        }
        let non_roots = (0..n as u32)
            .filter(|&v| self.forest.parent_raw(v) != NONE)
            .count();
        ensure!(
            total_children == non_roots,
            "child lists hold {total_children} nodes but the forest has {non_roots} non-roots"
        );

        let mut in_list = vec![false; n];
        for &u in &self.dirty_list {
            ensure!(
                (u as usize) < n,
                "dirty_list contains out-of-range node {u}"
            );
            ensure!(!in_list[u as usize], "dirty_list lists n{u} twice");
            in_list[u as usize] = true;
            ensure!(
                self.dirty[u as usize],
                "dirty_list lists n{u}, which is not flagged dirty"
            );
        }
        for v in 0..n as u32 {
            let vi = v as usize;
            if self.dirty[vi] {
                ensure!(
                    in_list[vi],
                    "n{v} is flagged dirty but missing from dirty_list"
                );
            }
        }
        Ok(())
    }

    /// Verifies (`check` feature) that the maintained trace resolves
    /// every node to exactly the value a fresh contraction of the current
    /// forest computes — the bit-identical guarantee of change
    /// propagation. Requires a clean forest (no pending edits).
    /// `O(n log n)` w.h.p.
    #[cfg(feature = "check")]
    pub fn validate_values(&self) -> Result<(), crate::check::InvariantError> {
        use crate::check::ensure;
        ensure!(
            self.dirty_list.is_empty(),
            "validate_values requires a clean forest ({} edits pending)",
            self.dirty_list.len()
        );
        let c = self
            .forest
            .contraction()
            .seed(splitmix64(!self.seed))
            .run(&self.alg);
        for v in 0..self.forest.len() as u32 {
            let got = resolve_val(&self.alg, &self.scratch.death, v);
            ensure!(
                got == *c.subtree_value(NodeId(v)),
                "propagated value of n{v} diverges from a fresh contraction"
            );
        }
        Ok(())
    }
}

impl<A: Propagate> Clone for DynForest<A> {
    fn clone(&self) -> Self {
        DynForest {
            alg: self.alg.clone(),
            forest: self.forest.clone(),
            children: self.children.clone(),
            child_slot: self.child_slot.clone(),
            dirty: self.dirty.clone(),
            dirty_list: self.dirty_list.clone(),
            has_structural: self.has_structural,
            use_propagation: self.use_propagation,
            // The scratch carries the live trace and the replay tables
            // index into it, so both clone — a cloned forest is
            // immediately ready to propagate (benchmarks rely on this).
            scratch: self.scratch.clone(),
            replay: self.replay.clone(),
            seed: self.seed,
            profile: self.profile.clone(),
        }
    }
}
