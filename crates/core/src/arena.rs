//! Arena-allocated rooted forests.
//!
//! Nodes are stored in two parallel `Vec`s (labels and parent links) and
//! addressed by dense `u32` indices — no `Rc`, no pointer chasing, and the
//! whole structure drops iteratively regardless of tree depth.

/// Sentinel parent index meaning "this node is a root".
pub(crate) const NONE: u32 = u32::MAX;

/// Identifier of a node inside a [`Forest`].
///
/// A `NodeId` is a dense `u32` index; it is only meaningful for the forest
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index of the node, suitable for indexing side tables.
    ///
    /// ```
    /// use dtc_core::Forest;
    /// let mut f = Forest::new();
    /// let r = f.add_root(7i64);
    /// assert_eq!(r.index(), 0);
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from a dense index.
    ///
    /// The index is not validated here; using an id that is out of range
    /// for a given forest panics at the point of use.
    ///
    /// ```
    /// use dtc_core::NodeId;
    /// assert_eq!(NodeId::from_index(3).index(), 3);
    /// ```
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        assert!(i < u32::MAX as usize, "index exceeds u32 node capacity");
        NodeId(i as u32)
    }

    #[inline]
    pub(crate) fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A rooted forest over arena-allocated nodes with labels of type `L`.
///
/// The forest only stores parent pointers; child lists are derived on demand
/// by the contraction engine and by [`DynForest`](crate::DynForest). Nodes
/// are append-only: build the shape with [`Forest::add_root`] and
/// [`Forest::add_child`], then contract it or wrap it in a `DynForest` for
/// batch-dynamic edits.
///
/// ```
/// use dtc_core::{Forest, SubtreeSum};
///
/// let mut f = Forest::new();
/// let root = f.add_root(1i64);
/// let a = f.add_child(root, 2);
/// let b = f.add_child(root, 3);
/// let _leaf = f.add_child(a, 4);
///
/// let c = f.contraction().run(&SubtreeSum);
/// assert_eq!(*c.subtree_value(root), 10);
/// assert_eq!(*c.subtree_value(a), 6);
/// assert_eq!(*c.subtree_value(b), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Forest<L> {
    labels: Vec<L>,
    parent: Vec<u32>,
}

impl<L> Forest<L> {
    /// Creates an empty forest.
    ///
    /// ```
    /// let f = dtc_core::Forest::<i64>::new();
    /// assert!(f.is_empty());
    /// ```
    pub fn new() -> Self {
        Forest {
            labels: Vec::new(),
            parent: Vec::new(),
        }
    }

    /// Creates an empty forest with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Forest {
            labels: Vec::with_capacity(n),
            parent: Vec::with_capacity(n),
        }
    }

    /// Number of nodes in the forest.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the forest has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    fn push(&mut self, label: L, parent: u32) -> NodeId {
        let id = self.labels.len();
        assert!(id < NONE as usize, "forest exceeds u32 node capacity");
        self.labels.push(label);
        self.parent.push(parent);
        NodeId(id as u32)
    }

    /// Adds a new root (a node with no parent) and returns its id.
    pub fn add_root(&mut self, label: L) -> NodeId {
        self.push(label, NONE)
    }

    /// Adds a new child of `parent` and returns its id.
    ///
    /// # Panics
    /// Panics if `parent` is not a node of this forest.
    pub fn add_child(&mut self, parent: NodeId, label: L) -> NodeId {
        assert!(
            parent.index() < self.labels.len(),
            "add_child: unknown parent {parent}"
        );
        self.push(label, parent.raw())
    }

    /// Parent of `v`, or `None` when `v` is a root.
    ///
    /// ```
    /// use dtc_core::Forest;
    /// let mut f = Forest::new();
    /// let r = f.add_root(0i64);
    /// let c = f.add_child(r, 1);
    /// assert_eq!(f.parent(c), Some(r));
    /// assert_eq!(f.parent(r), None);
    /// ```
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v.index()];
        (p != NONE).then_some(NodeId(p))
    }

    #[inline]
    pub(crate) fn parent_raw(&self, v: u32) -> u32 {
        self.parent[v as usize]
    }

    pub(crate) fn set_parent_raw(&mut self, v: u32, p: u32) {
        self.parent[v as usize] = p;
    }

    /// Label of `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> &L {
        &self.labels[v.index()]
    }

    /// Replaces the label of `v`.
    ///
    /// Note: when the forest is wrapped in a [`DynForest`](crate::DynForest),
    /// use [`DynForest::batch_update_weights`](crate::DynForest::batch_update_weights)
    /// instead so the change is propagated.
    pub fn set_label(&mut self, v: NodeId, label: L) {
        self.labels[v.index()] = label;
    }

    /// `true` when `v` has no parent.
    #[inline]
    pub fn is_root(&self, v: NodeId) -> bool {
        self.parent[v.index()] == NONE
    }

    /// Iterator over all node ids, in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Iterator over the current roots of the forest.
    ///
    /// ```
    /// use dtc_core::Forest;
    /// let mut f = Forest::new();
    /// let a = f.add_root(0i64);
    /// let b = f.add_root(1);
    /// f.add_child(a, 2);
    /// let roots: Vec<_> = f.roots().collect();
    /// assert_eq!(roots, vec![a, b]);
    /// ```
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == NONE)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Root of the component containing `v`, found by walking parent links.
    pub fn root_of(&self, v: NodeId) -> NodeId {
        let mut u = v.raw();
        while self.parent[u as usize] != NONE {
            u = self.parent[u as usize];
        }
        NodeId(u)
    }

    /// Verifies the structural invariants of the arena (`check` feature):
    /// parallel label/parent arrays of equal length, every parent pointer
    /// in range or `NONE`, and the parent graph acyclic — i.e. every node
    /// is reachable from a root. The arena is append-only (there is no
    /// free list), so these three properties are the whole contract.
    ///
    /// Returns a descriptive [`InvariantError`](crate::check::InvariantError)
    /// for the first violation found. `O(n)`.
    #[cfg(feature = "check")]
    pub fn validate(&self) -> Result<(), crate::check::InvariantError> {
        crate::check::ensure!(
            self.labels.len() == self.parent.len(),
            "label/parent arrays disagree: {} labels vs {} parents",
            self.labels.len(),
            self.parent.len()
        );
        // `Euler::of` re-checks parent ranges, then proves acyclicity by
        // counting the nodes its root-down traversal reaches.
        crate::check::Euler::of(self).map(|_| ())
    }

    /// Builds child adjacency lists (index = parent, values = children).
    pub(crate) fn build_children(&self) -> Vec<Vec<u32>> {
        let mut children = vec![Vec::new(); self.len()];
        for (i, &p) in self.parent.iter().enumerate() {
            if p != NONE {
                children[p as usize].push(i as u32);
            }
        }
        children
    }
}
