//! Machine-checked structural invariants and a dynamic write-conflict
//! detector (the `check` cargo feature).
//!
//! The engine's correctness rests on a handful of structural invariants —
//! every node dies exactly once, death rounds strictly increase along the
//! trace's shortcut (`up[]`) pointers, the hop CSR partitions the
//! compressed nodes, dirty sets stay upward-closed — and on the claim that
//! all actions planned in one rake/compress round touch **disjoint** (or
//! commutatively-combinable) state. This module turns those proof
//! obligations into executable checks:
//!
//! * **Validators** — with the `check` feature enabled,
//!   [`Forest::validate`](crate::Forest::validate),
//!   [`Contraction::validate`](crate::Contraction::validate) and
//!   [`DynForest::validate`](crate::DynForest::validate) verify the full
//!   invariant set of their layer and return a descriptive
//!   [`InvariantError`] on the first violation. (The arena is append-only —
//!   there is no free list — so its checks are parent-range, parallel-array
//!   length, and acyclicity.)
//! * **Per-round engine hooks** — the engine calls a round validator after
//!   every apply phase and asserts no node dies twice. Both are guarded by
//!   [`ENABLED`], the same const-gating idiom as
//!   [`obs::Sink::ENABLED`](crate::obs::Sink::ENABLED): with the feature
//!   off the hooks are empty `#[inline]` functions behind a constant-false
//!   branch, and the optimizer deletes them.
//! * **Conflict detector** — [`WriteLog`] is a shadow last-writer map
//!   `cell → (round, owner, mode)` fed by every scratch-state mutation the
//!   apply phase performs, and [`PlanLog`] its concurrent sibling for the
//!   (possibly multi-threaded) plan phase. Two owners touching the same
//!   cell in the same round fail fast — a hand-rolled dynamic race
//!   detector for the "planned actions are disjoint" claim, usable where
//!   `loom`-style model checkers are unavailable. Writes that the
//!   [`Algebra`](crate::Algebra) laws make order-free (sibling rakes
//!   absorbing into one parent accumulator, child-count decrements) are
//!   recorded with a commutative [`WriteMode`] and only conflict with
//!   writes of a *different* mode. Reads are not tracked: the plan phase
//!   reads only the immutable pre-round snapshot, so write/write conflicts
//!   are the whole hazard surface.
//!
//! Everything here compiles to nothing without the feature: [`WriteLog`]
//! and [`PlanLog`] become field-less structs with empty inlined methods,
//! and the validators simply do not exist. Benchmarks assert the feature is
//! off (see `dtc-bench`) so recorded numbers stay comparable.

use std::fmt;

/// `true` when the `check` feature is compiled in.
///
/// Engine hooks are guarded as `if check::ENABLED { … }` so that, exactly
/// like [`obs::Sink::ENABLED`](crate::obs::Sink::ENABLED), the unchecked
/// build pays nothing.
pub const ENABLED: bool = cfg!(feature = "check");

/// `true` when this build of `dtc-core` has the `check` feature enabled.
///
/// Benchmarks call this to refuse to record numbers from an instrumented
/// build (per-round validation is `O(frontier)` extra work per round).
pub const fn enabled() -> bool {
    ENABLED
}

/// Fail-fast assertion for internal invariants.
///
/// Unlike a bare `panic!`, every use signals a *broken engine invariant*
/// (never bad user input — those paths return proper `Err`s), and the
/// repo lint (`cargo run -p xtask -- lint`) sanctions `invariant!` while
/// forbidding raw `panic!`/`unwrap`/`expect` in library paths.
macro_rules! invariant {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            // lint:allow(panic): invariant! is the sanctioned fail-fast primitive
            panic!("invariant violated: {}", format_args!($($arg)+));
        }
    };
}
pub(crate) use invariant;

/// Early-return helper for validators: like `invariant!` but produces an
/// `Err(InvariantError)` instead of panicking, so `validate()` callers can
/// report violations without unwinding.
#[cfg(feature = "check")]
macro_rules! ensure {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err($crate::check::InvariantError::new(format!($($arg)+)));
        }
    };
}
#[cfg(feature = "check")]
pub(crate) use ensure;

/// A violated structural invariant, reported by the `validate()` methods.
///
/// Carries a human-readable description of the first violation found;
/// validators stop at the first problem so the message always points at a
/// concrete node or cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantError {
    what: String,
}

impl InvariantError {
    #[cfg(feature = "check")]
    pub(crate) fn new(what: impl Into<String>) -> Self {
        InvariantError { what: what.into() }
    }

    /// The violation description.
    pub fn message(&self) -> &str {
        &self.what
    }
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant violated: {}", self.what)
    }
}

impl std::error::Error for InvariantError {}

/// One mutable cell of the engine's per-node scratch state, the unit of
/// conflict detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// Working parent pointer `par[v]`.
    Par(u32),
    /// Live child count `count[v]`.
    Count(u32),
    /// Partial accumulator `acc[v]`.
    Acc(u32),
    /// Edge function `fun[v]`.
    Fun(u32),
    /// Sibling slot `sib[v]`.
    Sib(u32),
    /// Life state of `v`: the alive flag plus the death record, round
    /// stamp and trace entry written by a kill.
    Life(u32),
    /// Plan-phase action slot of live node `v`.
    Action(u32),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Cell::Par(v) => write!(f, "par[n{v}]"),
            Cell::Count(v) => write!(f, "count[n{v}]"),
            Cell::Acc(v) => write!(f, "acc[n{v}]"),
            Cell::Fun(v) => write!(f, "fun[n{v}]"),
            Cell::Sib(v) => write!(f, "sib[n{v}]"),
            Cell::Life(v) => write!(f, "life[n{v}]"),
            Cell::Action(v) => write!(f, "action[n{v}]"),
        }
    }
}

/// How a cell was written, deciding which same-round overlaps are races.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Plain write; any other owner touching the cell this round is a
    /// conflict.
    Exclusive,
    /// Commutative fold into an accumulator ([`Algebra::absorb`]
    /// commutativity makes sibling rakes order-free).
    ///
    /// [`Algebra::absorb`]: crate::Algebra::absorb
    Absorb,
    /// Commutative child-count decrement.
    Decrement,
}

impl WriteMode {
    /// Stable lowercase name for messages.
    fn name(self) -> &'static str {
        match self {
            WriteMode::Exclusive => "exclusive",
            WriteMode::Absorb => "absorb",
            WriteMode::Decrement => "decrement",
        }
    }
}

/// Two owners touched the same cell in the same round, reported by
/// [`WriteLog::record`] / [`PlanLog::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictError {
    cell: Cell,
    round: u32,
    first_owner: u64,
    first_mode: WriteMode,
    second_owner: u64,
    second_mode: WriteMode,
}

impl fmt::Display for ConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write conflict on {} in round {}: owner {} ({}) vs owner {} ({})",
            self.cell,
            self.round,
            self.first_owner,
            self.first_mode.name(),
            self.second_owner,
            self.second_mode.name()
        )
    }
}

impl std::error::Error for ConflictError {}

/// Last writer of a cell (enabled builds only).
#[cfg(feature = "check")]
#[derive(Debug, Clone, Copy)]
struct Written {
    round: u32,
    owner: u64,
    mode: WriteMode,
}

/// Shadow write-log for the (sequential) apply phase: a last-writer map
/// `cell → (round, owner, mode)`.
///
/// The engine records every scratch mutation an action performs, with the
/// acting node as the owner. Because the randomized coin condition is
/// supposed to make all planned actions disjoint (up to commutative
/// absorbs/decrements), any two owners hitting one cell in one round is a
/// planning bug — [`WriteLog::record`] reports it as a [`ConflictError`]
/// and the engine fails fast.
///
/// Without the `check` feature this is a field-less struct whose methods
/// are empty `#[inline]` bodies.
///
/// ```
/// use dtc_core::check::{Cell, WriteLog, WriteMode};
/// let mut log = WriteLog::new();
/// log.begin_round(1);
/// // Two siblings absorbing into one parent accumulator commute: fine.
/// assert!(log.record(Cell::Acc(7), WriteMode::Absorb, 1).is_ok());
/// assert!(log.record(Cell::Acc(7), WriteMode::Absorb, 2).is_ok());
/// # #[cfg(feature = "check")]
/// // An exclusive write to the same cell in the same round is a race.
/// assert!(log.record(Cell::Acc(7), WriteMode::Exclusive, 3).is_err());
/// log.begin_round(2);
/// // New round: the cell may be written again.
/// assert!(log.record(Cell::Acc(7), WriteMode::Exclusive, 3).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct WriteLog {
    #[cfg(feature = "check")]
    entries: std::collections::HashMap<Cell, Written>,
    #[cfg(feature = "check")]
    round: u32,
}

impl WriteLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new round; entries from earlier rounds stop conflicting
    /// (they are lazily overwritten rather than eagerly cleared).
    #[inline]
    pub fn begin_round(&mut self, _round: u32) {
        #[cfg(feature = "check")]
        {
            self.round = _round;
        }
    }

    /// Records that `_owner` wrote `_cell` with `_mode` in the current
    /// round. Returns the conflict if another owner already touched the
    /// cell this round in a non-commuting way.
    #[inline]
    pub fn record(
        &mut self,
        _cell: Cell,
        _mode: WriteMode,
        _owner: u64,
    ) -> Result<(), ConflictError> {
        #[cfg(feature = "check")]
        {
            use std::collections::hash_map::Entry;
            match self.entries.entry(_cell) {
                Entry::Vacant(e) => {
                    e.insert(Written {
                        round: self.round,
                        owner: _owner,
                        mode: _mode,
                    });
                }
                Entry::Occupied(mut e) => {
                    let w = e.get_mut();
                    if w.round != self.round {
                        *w = Written {
                            round: self.round,
                            owner: _owner,
                            mode: _mode,
                        };
                    } else if w.owner != _owner
                        && (_mode != w.mode || _mode == WriteMode::Exclusive)
                    {
                        return Err(ConflictError {
                            cell: _cell,
                            round: self.round,
                            first_owner: w.owner,
                            first_mode: w.mode,
                            second_owner: _owner,
                            second_mode: _mode,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Concurrent write-log for the plan phase: one entry per action slot,
/// keyed by the worker thread that wrote it.
///
/// The plan phase hands each live node's action slot to exactly one worker
/// (contiguous chunks under the `parallel` feature); this log records the
/// actual writer of every slot and [`PlanLog::finish`] reports the first
/// slot two distinct workers both wrote. Interior mutability (a mutex) so
/// the recording call works from inside the scoped-thread fan-out.
///
/// Without the `check` feature this is a field-less struct whose methods
/// are empty `#[inline]` bodies.
#[derive(Debug, Default)]
pub struct PlanLog {
    #[cfg(feature = "check")]
    state: std::sync::Mutex<PlanState>,
}

#[cfg(feature = "check")]
#[derive(Debug, Default)]
struct PlanState {
    slots: std::collections::HashMap<u32, u64>,
    conflict: Option<ConflictError>,
}

impl PlanLog {
    /// Creates an empty log (one per planning round).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the *current thread* wrote the action slot of live
    /// node `_slot`.
    #[inline]
    pub fn record(&self, _slot: u32) {
        #[cfg(feature = "check")]
        self.record_as(_slot, crate::par::worker_tag());
    }

    /// Records a slot write by an explicit worker tag.
    ///
    /// This is the seam the conflict-detector tests use to simulate two
    /// workers colliding on one slot without spawning threads.
    #[cfg(feature = "check")]
    pub fn record_as(&self, slot: u32, worker: u64) {
        // A poisoned mutex means a sibling worker already panicked; the
        // run is failing anyway, so skip recording rather than unwind.
        let Ok(mut state) = self.state.lock() else {
            return;
        };
        if state.conflict.is_some() {
            return;
        }
        match state.slots.insert(slot, worker) {
            Some(prev) if prev != worker => {
                state.conflict = Some(ConflictError {
                    cell: Cell::Action(slot),
                    round: 0,
                    first_owner: prev,
                    first_mode: WriteMode::Exclusive,
                    second_owner: worker,
                    second_mode: WriteMode::Exclusive,
                });
            }
            _ => {}
        }
    }

    /// Reports the first conflicting slot write, if any.
    #[inline]
    pub fn finish(&self) -> Result<(), ConflictError> {
        #[cfg(feature = "check")]
        {
            let Ok(state) = self.state.lock() else {
                return Ok(());
            };
            if let Some(c) = &state.conflict {
                return Err(c.clone());
            }
        }
        Ok(())
    }
}

/// Escalates a detector result into a fail-fast panic (via `invariant!`).
///
/// In unchecked builds the result is always `Ok`, so the branch is
/// constant-false and vanishes.
#[inline]
pub(crate) fn must(r: Result<(), ConflictError>) {
    if let Err(c) = r {
        invariant!(false, "{c}");
    }
}

/// Euler tour intervals over a forest: `O(1)` ancestor tests for the
/// validators, plus a cycle check for free (a cyclic parent graph never
/// visits all nodes).
#[cfg(feature = "check")]
pub(crate) struct Euler {
    tin: Vec<u32>,
    tout: Vec<u32>,
}

#[cfg(feature = "check")]
impl Euler {
    /// Computes intervals, or reports a parent cycle / dangling parent.
    pub(crate) fn of<L>(forest: &crate::Forest<L>) -> Result<Euler, InvariantError> {
        let n = forest.len();
        for v in 0..n as u32 {
            let p = forest.parent_raw(v);
            ensure!(
                p == crate::arena::NONE || (p as usize) < n,
                "parent pointer of n{v} ({p}) is out of range for {n} nodes"
            );
        }
        let children = forest.build_children();
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut clock = 0u32;
        let mut visited = 0usize;
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for r in forest.roots() {
            stack.push((r.raw(), 0));
            tin[r.index()] = clock;
            clock += 1;
            visited += 1;
            while let Some((u, ci)) = stack.last_mut() {
                let u = *u;
                if *ci < children[u as usize].len() {
                    let k = children[u as usize][*ci];
                    *ci += 1;
                    tin[k as usize] = clock;
                    clock += 1;
                    visited += 1;
                    stack.push((k, 0));
                } else {
                    tout[u as usize] = clock;
                    clock += 1;
                    stack.pop();
                }
            }
        }
        ensure!(
            visited == n,
            "parent links reach only {visited} of {n} nodes from the roots (cycle?)"
        );
        Ok(Euler { tin, tout })
    }

    /// `true` iff `a` is an ancestor of `b` (or equal).
    #[inline]
    pub(crate) fn is_anc(&self, a: u32, b: u32) -> bool {
        self.tin[a as usize] <= self.tin[b as usize]
            && self.tout[b as usize] <= self.tout[a as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_log_allows_commuting_writes() {
        let mut log = WriteLog::new();
        log.begin_round(1);
        assert!(log.record(Cell::Acc(3), WriteMode::Absorb, 10).is_ok());
        assert!(log.record(Cell::Acc(3), WriteMode::Absorb, 11).is_ok());
        assert!(log.record(Cell::Count(3), WriteMode::Decrement, 10).is_ok());
        assert!(log.record(Cell::Count(3), WriteMode::Decrement, 11).is_ok());
        // Same owner may rewrite its own cell however it likes.
        assert!(log.record(Cell::Fun(5), WriteMode::Exclusive, 9).is_ok());
        assert!(log.record(Cell::Fun(5), WriteMode::Exclusive, 9).is_ok());
    }

    #[cfg(feature = "check")]
    #[test]
    fn write_log_reports_overlapping_exclusive_writes() {
        let mut log = WriteLog::new();
        log.begin_round(4);
        assert!(log.record(Cell::Par(8), WriteMode::Exclusive, 1).is_ok());
        let err = log
            .record(Cell::Par(8), WriteMode::Exclusive, 2)
            .expect_err("two exclusive writers on one cell must conflict");
        let msg = err.to_string();
        assert!(msg.contains("par[n8]"), "message names the cell: {msg}");
        assert!(msg.contains("round 4"), "message names the round: {msg}");
        // Mixing a commutative absorb with an exclusive write also races.
        assert!(log.record(Cell::Acc(9), WriteMode::Absorb, 1).is_ok());
        assert!(log.record(Cell::Acc(9), WriteMode::Exclusive, 2).is_err());
        // A later round clears the slate.
        log.begin_round(5);
        assert!(log.record(Cell::Par(8), WriteMode::Exclusive, 2).is_ok());
    }

    #[cfg(feature = "check")]
    #[test]
    fn plan_log_reports_two_workers_on_one_slot() {
        let log = PlanLog::new();
        log.record_as(41, 0xAA);
        log.record_as(42, 0xAA);
        assert!(log.finish().is_ok());
        log.record_as(41, 0xBB);
        let err = log.finish().expect_err("two workers wrote slot 41");
        assert!(err.to_string().contains("action[n41]"));
    }
}
