//! Observability: phase spans, per-round counters, and latency histograms.
//!
//! The contraction engine is a *complexity claim* — `O(polylog)` rounds,
//! dirty work proportional to the batch — and this module is how the claim
//! becomes a number. The engine (and the batch-dynamic layer above it)
//! reports into a statically-dispatched [`Sink`]:
//!
//! * **Phase spans** — wall time of each [`Phase`] (`Plan`, `Apply`,
//!   `Backsolve`, `DirtyMark`, `Propagate`), one span per occurrence;
//! * **Per-round counters** — a [`RoundCounters`] record per rake/compress
//!   round: live frontier size, rakes, splices, finishes, and coin
//!   rejections (splice candidates that lost the randomized coin toss).
//!
//! Dispatch is static: the engine is generic over `S: Sink` and every
//! instrumentation site is guarded by the associated constant
//! [`Sink::ENABLED`]. For [`NoopSink`] (`ENABLED = false`) the guards are
//! constant-false branches the optimizer deletes, so the default,
//! unobserved build pays nothing — no timestamps, no counter arithmetic.
//!
//! [`Profile`] is the batteries-included sink: it aggregates spans into
//! log-bucketed latency histograms (hand-rolled HDR-style, ~3% relative
//! resolution, p50/p90/p99) and rounds into per-round-index totals, and is
//! what [`ContractOptions::profiled`](crate::ContractOptions::profiled) and
//! [`DynForest::enable_profiling`](crate::DynForest::enable_profiling)
//! attach for you.
//!
//! ```
//! use dtc_core::obs::Phase;
//! use dtc_core::{gen, SubtreeSum};
//!
//! let f = gen::random_tree(1_000, 42);
//! let c = f.contraction().seed(0xC0FFEE).profiled().run(&SubtreeSum);
//! let prof = c.profile().unwrap();
//! assert_eq!(prof.total_retired(), 1_000); // every node died exactly once
//! assert!(prof.phase_stats(Phase::Plan).spans() >= 1);
//! println!("{prof}");
//! ```

use std::fmt;

/// Engine phase a span is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Per-round read-only planning (action selection).
    Plan,
    /// Per-round action application (rake/splice/finish execution).
    Apply,
    /// Reverse replay of the death trace recovering per-node values.
    Backsolve,
    /// Dirty-path marking performed by a batch edit.
    DirtyMark,
    /// Trace replay performed by change propagation (affected-slot
    /// scheduling plus per-slot re-execution).
    Propagate,
}

impl Phase {
    /// Number of distinct phases.
    pub const COUNT: usize = 5;

    /// All phases, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Plan,
        Phase::Apply,
        Phase::Backsolve,
        Phase::DirtyMark,
        Phase::Propagate,
    ];

    /// Dense index, `0..Phase::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (used in reports and JSON records).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Apply => "apply",
            Phase::Backsolve => "backsolve",
            Phase::DirtyMark => "dirty_mark",
            Phase::Propagate => "propagate",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters for one rake/compress round, emitted after its apply phase.
///
/// Conservation invariant (tested): every action retires exactly one node,
/// so `rakes + splices + finishes` equals the frontier shrinkage from this
/// round to the next, and their sum over all rounds equals the size of the
/// active set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundCounters {
    /// Round number (1-based).
    pub round: u32,
    /// Live nodes at the start of the round.
    pub frontier: usize,
    /// Childless non-roots folded into their parents.
    pub rakes: u32,
    /// Unary nodes spliced out of chains.
    pub splices: u32,
    /// Childless roots retired with their component value.
    pub finishes: u32,
    /// Splice candidates (unary non-root parent with a grandparent) that
    /// failed the heads/tails coin condition this round.
    pub coin_rejections: u32,
}

impl RoundCounters {
    /// Nodes retired this round (`rakes + splices + finishes`).
    #[inline]
    pub fn retired(&self) -> u32 {
        self.rakes + self.splices + self.finishes
    }
}

/// Whole-run counter totals, as carried by
/// [`UpdateStats::counters`](crate::UpdateStats::counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCounters {
    /// Rounds the run took.
    pub rounds: u32,
    /// Total rake actions.
    pub rakes: u64,
    /// Total splice (compress) actions.
    pub splices: u64,
    /// Total finished roots.
    pub finishes: u64,
    /// Total coin rejections across rounds.
    pub coin_rejections: u64,
    /// Largest round-start frontier observed.
    pub max_frontier: usize,
    /// Trace slots re-executed by change propagation (0 for full
    /// contractions and legacy dirty-set recomputes).
    pub replayed_slots: u64,
    /// Trace slots whose recorded result was reused untouched by change
    /// propagation.
    pub reused_slots: u64,
}

impl EngineCounters {
    /// Nodes retired over the whole run; equals the active-set size.
    #[inline]
    pub fn retired(&self) -> u64 {
        self.rakes + self.splices + self.finishes
    }

    /// Folds one round's counters into the totals.
    #[inline]
    pub fn absorb_round(&mut self, rc: &RoundCounters) {
        self.rounds = self.rounds.max(rc.round);
        self.rakes += rc.rakes as u64;
        self.splices += rc.splices as u64;
        self.finishes += rc.finishes as u64;
        self.coin_rejections += rc.coin_rejections as u64;
        self.max_frontier = self.max_frontier.max(rc.frontier);
    }
}

impl fmt::Display for EngineCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} retired ({} rakes, {} splices, {} finishes), \
             {} coin rejections, peak frontier {}",
            self.rounds,
            self.retired(),
            self.rakes,
            self.splices,
            self.finishes,
            self.coin_rejections,
            self.max_frontier
        )?;
        if self.replayed_slots + self.reused_slots > 0 {
            write!(
                f,
                ", {} slots replayed, {} reused",
                self.replayed_slots, self.reused_slots
            )?;
        }
        Ok(())
    }
}

/// Receiver for engine telemetry. Statically dispatched: implement this and
/// pass `&mut sink` to the `*_with` entry points.
///
/// All instrumentation sites in the engine are guarded by
/// [`Sink::ENABLED`]; leave it `true` (the default) for real sinks, and the
/// engine will time phases and count actions before calling in. A sink with
/// `ENABLED = false` (like [`NoopSink`]) promises it ignores everything,
/// letting the engine compile all instrumentation out.
pub trait Sink {
    /// Whether the engine should collect telemetry at all.
    const ENABLED: bool = true;

    /// One completed span of `phase`, lasting `nanos` nanoseconds.
    fn phase(&mut self, phase: Phase, nanos: u64);

    /// Counters for one completed round.
    fn round(&mut self, counters: &RoundCounters);
}

/// The do-nothing sink; `ENABLED = false` compiles all telemetry out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl Sink for NoopSink {
    const ENABLED: bool = false;

    #[inline]
    fn phase(&mut self, _phase: Phase, _nanos: u64) {}

    #[inline]
    fn round(&mut self, _counters: &RoundCounters) {}
}

/// Number of linear sub-buckets per power of two (2⁵ = 32): worst-case
/// relative bucket width, and thus percentile resolution, is 1/32 ≈ 3%.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Values `0..SUB_BUCKETS` get exact buckets; each of the remaining
/// `64 - SUB_BITS` octaves of `u64` gets `SUB_BUCKETS` buckets.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Log-bucketed latency histogram in the HDR-histogram style, hand-rolled
/// so the crate stays dependency-free.
///
/// Values below 32 are recorded exactly; larger values land in one of 32
/// linear sub-buckets of their power-of-two octave, bounding relative error
/// at ~3% (percentiles report the bucket midpoint, halving that again).
///
/// ```
/// use dtc_core::obs::LatencyHistogram;
/// let mut h = LatencyHistogram::default();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.percentile(50.0) as f64;
/// assert!((p50 - 500.0).abs() / 500.0 < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for `v`: identity below `SUB_BUCKETS`, then
/// `(octave, top SUB_BITS mantissa bits)`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) & (SUB_BUCKETS - 1);
    (((msb - SUB_BITS + 1) as u64) * SUB_BUCKETS + sub) as usize
}

/// Smallest value mapping to bucket `i` (inverse of [`bucket_index`]).
#[inline]
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let octave = (i >> SUB_BITS) - 1;
    let sub = i & (SUB_BUCKETS - 1);
    (SUB_BUCKETS + sub) << octave
}

impl LatencyHistogram {
    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (exact); 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at percentile `q` (e.g. `50.0`, `99.0`), reported as the
    /// midpoint of the bucket holding the rank — exact for values below 32,
    /// within ~1.6% above. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        let target = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let low = bucket_low(i);
                let width = if i + 1 < BUCKETS {
                    bucket_low(i + 1) - low
                } else {
                    1
                };
                // Midpoint, clamped to the recorded range so tails of wide
                // buckets never report beyond the true extremes.
                return (low + (width - 1) / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Aggregated span statistics for one [`Phase`].
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    hist: LatencyHistogram,
}

impl PhaseStats {
    /// Number of spans recorded.
    pub fn spans(&self) -> u64 {
        self.hist.count()
    }

    /// Total nanoseconds across all spans.
    pub fn total_ns(&self) -> u64 {
        self.hist.sum()
    }

    /// Median span latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.hist.percentile(50.0)
    }

    /// 90th-percentile span latency in nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.hist.percentile(90.0)
    }

    /// 99th-percentile span latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.hist.percentile(99.0)
    }

    /// The underlying latency histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }
}

/// Per-round-index totals, aggregated across every run a [`Profile`] saw.
///
/// For a single contraction this is exactly that run's [`RoundCounters`];
/// across several runs (e.g. repeated [`recompute`] calls) counters are
/// summed and `runs` says how many runs reached this round.
///
/// [`recompute`]: crate::DynForest::recompute
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundAgg {
    /// Runs that executed this round.
    pub runs: u64,
    /// Summed round-start frontier sizes.
    pub frontier: u64,
    /// Summed rake actions.
    pub rakes: u64,
    /// Summed splice actions.
    pub splices: u64,
    /// Summed finished roots.
    pub finishes: u64,
    /// Summed coin rejections.
    pub coin_rejections: u64,
}

impl RoundAgg {
    /// Nodes retired in this round across all runs.
    #[inline]
    pub fn retired(&self) -> u64 {
        self.rakes + self.splices + self.finishes
    }
}

/// The batteries-included [`Sink`]: aggregates phase spans into latency
/// histograms and round counters into per-round totals.
///
/// Attach one with
/// [`ContractOptions::profiled`](crate::ContractOptions::profiled) or
/// [`DynForest::enable_profiling`](crate::DynForest::enable_profiling), or
/// pass `&mut Profile` to any `*_with` entry point directly. `Display`
/// renders the full report.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    phases: [PhaseStats; Phase::COUNT],
    rounds: Vec<RoundAgg>,
    runs: u64,
    totals: EngineCounters,
}

impl Profile {
    /// Records one phase span (inherent mirror of [`Sink::phase`]).
    pub fn record_span(&mut self, phase: Phase, nanos: u64) {
        self.phases[phase.index()].hist.record(nanos);
    }

    /// Records one round's counters (inherent mirror of [`Sink::round`]).
    pub fn record_round(&mut self, c: &RoundCounters) {
        if c.round == 1 {
            self.runs += 1;
        }
        let idx = (c.round.max(1) - 1) as usize;
        if self.rounds.len() <= idx {
            self.rounds.resize_with(idx + 1, RoundAgg::default);
        }
        let agg = &mut self.rounds[idx];
        agg.runs += 1;
        agg.frontier += c.frontier as u64;
        agg.rakes += c.rakes as u64;
        agg.splices += c.splices as u64;
        agg.finishes += c.finishes as u64;
        agg.coin_rejections += c.coin_rejections as u64;
        self.totals.absorb_round(c);
    }

    /// Contraction runs observed (a run = one full drain of an active set).
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Span statistics for `phase`.
    pub fn phase_stats(&self, phase: Phase) -> &PhaseStats {
        &self.phases[phase.index()]
    }

    /// Per-round totals, indexed by round (entry 0 = round 1).
    pub fn per_round(&self) -> &[RoundAgg] {
        &self.rounds
    }

    /// Deepest round any observed run reached.
    pub fn max_rounds(&self) -> u32 {
        self.rounds.len() as u32
    }

    /// Counter totals across all observed runs.
    pub fn totals(&self) -> EngineCounters {
        self.totals
    }

    /// Total rake actions across all runs.
    pub fn total_rakes(&self) -> u64 {
        self.totals.rakes
    }

    /// Total splice actions across all runs.
    pub fn total_splices(&self) -> u64 {
        self.totals.splices
    }

    /// Total finished roots across all runs.
    pub fn total_finishes(&self) -> u64 {
        self.totals.finishes
    }

    /// Total coin rejections across all runs.
    pub fn total_coin_rejections(&self) -> u64 {
        self.totals.coin_rejections
    }

    /// Total nodes retired across all runs (rakes + splices + finishes).
    pub fn total_retired(&self) -> u64 {
        self.totals.retired()
    }

    /// Largest round-start frontier observed.
    pub fn max_frontier(&self) -> usize {
        self.totals.max_frontier
    }
}

impl Sink for Profile {
    #[inline]
    fn phase(&mut self, phase: Phase, nanos: u64) {
        self.record_span(phase, nanos);
    }

    #[inline]
    fn round(&mut self, counters: &RoundCounters) {
        self.record_round(counters);
    }
}

/// Formats nanoseconds with a sensible unit.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile: {} run(s), deepest {} rounds — {}",
            self.runs, self.totals.rounds, self.totals
        )?;
        writeln!(
            f,
            "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "phase", "spans", "total", "p50", "p90", "p99"
        )?;
        for phase in Phase::ALL {
            let s = self.phase_stats(phase);
            if s.spans() == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
                phase.name(),
                s.spans(),
                fmt_ns(s.total_ns()),
                fmt_ns(s.p50_ns()),
                fmt_ns(s.p90_ns()),
                fmt_ns(s.p99_ns()),
            )?;
        }
        writeln!(
            f,
            "{:<6} {:>6} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "round", "runs", "frontier", "rakes", "splices", "finishes", "rejects"
        )?;
        for (i, r) in self.rounds.iter().enumerate() {
            writeln!(
                f,
                "{:<6} {:>6} {:>12} {:>10} {:>10} {:>10} {:>10}",
                i + 1,
                r.runs,
                r.frontier,
                r.rakes,
                r.splices,
                r.finishes,
                r.coin_rejections
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_low_are_inverse_and_monotone() {
        let mut prev = None;
        for i in 0..BUCKETS {
            let low = bucket_low(i);
            assert_eq!(bucket_index(low), i, "bucket_low({i}) = {low}");
            if let Some(p) = prev {
                assert!(low > p, "bucket lows must be strictly increasing");
            }
            prev = Some(low);
        }
        // Every value maps into range, including extremes.
        for v in [0u64, 1, 31, 32, 33, 1000, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(bucket_low(i) <= v);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(31);
        assert_eq!(h.percentile(50.0), 10);
        assert_eq!(h.percentile(99.0), 10);
        assert_eq!(h.percentile(100.0), 31);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn profile_counts_runs_by_round_one() {
        let mut p = Profile::default();
        for run in 0..3 {
            for round in 1..=(run + 2) {
                p.record_round(&RoundCounters {
                    round,
                    frontier: 10,
                    rakes: 1,
                    ..Default::default()
                });
            }
        }
        assert_eq!(p.runs(), 3);
        assert_eq!(p.max_rounds(), 4);
        assert_eq!(p.per_round()[0].runs, 3);
        assert_eq!(p.per_round()[3].runs, 1);
        assert_eq!(p.total_rakes(), 2 + 3 + 4);
    }
}
