//! Correctness-tooling tests (`--features check`).
//!
//! With the `check` feature on, every contraction in this file runs the
//! engine's per-round invariant sweep and conflict detector implicitly; the
//! tests then call the structural validators explicitly after each
//! contraction and each `recompute()`, across the standard shape zoo up to
//! 1e5 nodes. The `smoke_`-prefixed tests are deliberately tiny — CI's
//! nightly Miri and thread-sanitizer jobs filter on that prefix to keep
//! interpreter/instrumentation runtimes bounded.
#![cfg(feature = "check")]

use dtc_core::check::{self, Cell, PlanLog, WriteLog, WriteMode};
use dtc_core::gen::{self, XorShift64};
use dtc_core::{DynForest, Forest, NodeId, QueryBatch, SubtreeSum};

/// The shape zoo shared by the property tests.
fn shapes(n: usize, seed: u64) -> Vec<(&'static str, Forest<i64>)> {
    vec![
        ("random", gen::random_tree(n, seed)),
        ("path", gen::path(n, seed)),
        ("star", gen::star(n, seed)),
        ("caterpillar", gen::caterpillar(n / 2, 2, seed)),
        ("forest", gen::random_forest(n, 1 + n / 50, seed)),
    ]
}

/// Contracts every shape (running the per-round engine hooks) and then
/// validates both the arena and the recorded trace.
fn contract_and_validate(n: usize, seed: u64) {
    for (name, f) in shapes(n, seed) {
        f.validate()
            .unwrap_or_else(|e| panic!("{name}/{n}: forest invalid: {e}"));
        let c = f.contraction().seed(seed).run(&SubtreeSum);
        c.validate(&f)
            .unwrap_or_else(|e| panic!("{name}/{n}: trace invalid: {e}"));
    }
}

#[test]
fn smoke_validators_accept_small_shapes() {
    assert!(check::enabled());
    contract_and_validate(200, 7);
}

#[test]
#[cfg_attr(miri, ignore = "large shapes; the smoke_ tests cover miri")]
fn validators_accept_shapes_up_to_1e5() {
    for n in [1_000, 10_000, 100_000] {
        contract_and_validate(n, 0x5EED ^ n as u64);
    }
}

/// Random edit/recompute churn on a dynamic forest, validating the full
/// dynamic layer (adjacency symmetry, dirty-set coherence, cached values)
/// after **every** `recompute()`, plus once mid-batch while dirty.
fn churn_and_validate(n: usize, rounds: usize, seed: u64) {
    let f = gen::random_tree(n, seed);
    let mut d = DynForest::with_seed(f, SubtreeSum, seed);
    d.validate().expect("fresh dynamic forest validates");

    let mut rng = XorShift64::new(seed | 1);
    for round in 0..rounds {
        // A batch of label bumps plus a cut; the cut node is random, so
        // roots get rejected — use the rolled-back try_ form.
        let bumps: Vec<(NodeId, i64)> = (0..4)
            .map(|_| {
                let v = NodeId::from_index((rng.next_u64() % n as u64) as usize);
                (v, (rng.next_u64() % 1_000) as i64)
            })
            .collect();
        d.batch_update_weights(&bumps);
        let v = NodeId::from_index((rng.next_u64() % n as u64) as usize);
        let was_root = d.forest().is_root(v);
        let cut = d.try_batch_cut(&[v]);
        assert_eq!(cut.is_err(), was_root, "round {round}: cut of {v}");
        d.validate()
            .unwrap_or_else(|e| panic!("round {round}: invalid while dirty: {e}"));

        let stats = d.recompute();
        assert!(stats.dirty > 0, "round {round}: edits marked nothing dirty");
        d.validate()
            .unwrap_or_else(|e| panic!("round {round}: invalid after recompute: {e}"));

        // Link the cut component back somewhere legal and re-validate.
        if cut.is_ok() {
            let mut p = NodeId::from_index((rng.next_u64() % n as u64) as usize);
            if d.forest().root_of(p) == v {
                p = v; // would cycle; linking v under itself is also a cycle
            }
            if p != v {
                d.batch_link(&[(v, p)]);
                d.recompute();
            }
            d.validate()
                .unwrap_or_else(|e| panic!("round {round}: invalid after relink: {e}"));
        }
    }
}

#[test]
fn smoke_dynamic_validates_after_every_recompute() {
    churn_and_validate(120, 6, 0xD1CE);
}

#[test]
#[cfg_attr(miri, ignore = "large shapes; the smoke_ tests cover miri")]
fn dynamic_validates_under_heavy_churn() {
    churn_and_validate(5_000, 30, 0xBEEF);
}

#[test]
#[cfg_attr(miri, ignore = "large shapes; the smoke_ tests cover miri")]
fn query_batch_exercises_euler_nesting_sweep() {
    // `build_ctx` re-derives Euler intervals per batch and, under `check`,
    // sweeps their nesting; a mixed batch over a non-trivial forest drives
    // that path end to end.
    let f = gen::random_forest(20_000, 16, 99);
    let c = f.contraction().run(&SubtreeSum);
    c.validate(&f).expect("trace validates");
    let ids: Vec<NodeId> = f.node_ids().collect();
    let mut batch = QueryBatch::new();
    batch
        .subtree(ids[17])
        .path(ids[12_345], ids[1])
        .lca(ids[4_242], ids[17_000])
        .component_root(ids[19_999]);
    let answers = c.query_batch(&f, &SubtreeSum, &batch).expect("batch runs");
    assert_eq!(answers.len(), 4);
}

#[test]
fn smoke_conflict_detector_fires_on_overlapping_writes() {
    // Two owners, same cell, same round: the seeded overlap every parallel
    // bug eventually reduces to. Commutative absorbs may share a cell;
    // anything else must be reported.
    let mut log = WriteLog::new();
    log.begin_round(3);
    assert!(log.record(Cell::Acc(7), WriteMode::Absorb, 1).is_ok());
    assert!(log.record(Cell::Acc(7), WriteMode::Absorb, 2).is_ok());
    let err = log
        .record(Cell::Par(7), WriteMode::Exclusive, 1)
        .and(log.record(Cell::Par(7), WriteMode::Exclusive, 2))
        .expect_err("overlapping exclusive writes must be detected");
    let msg = err.to_string();
    assert!(msg.contains("par[n7]"), "names the cell: {msg}");
    assert!(msg.contains("round 3"), "names the round: {msg}");
    assert!(msg.contains("owner 1") && msg.contains("owner 2"), "{msg}");

    // Mixing a commutative mode with an exclusive write is also a race.
    assert!(log.record(Cell::Count(9), WriteMode::Decrement, 1).is_ok());
    assert!(log.record(Cell::Count(9), WriteMode::Exclusive, 2).is_err());

    // A new round clears the slate.
    log.begin_round(4);
    assert!(log.record(Cell::Par(7), WriteMode::Exclusive, 2).is_ok());
}

#[test]
fn smoke_plan_log_fires_on_two_workers_sharing_a_slot() {
    let log = PlanLog::new();
    for slot in 0..16 {
        log.record_as(slot, 0xA);
    }
    assert!(log.finish().is_ok(), "disjoint slots are fine");
    log.record_as(5, 0xB);
    let err = log
        .finish()
        .expect_err("slot 5 written by two workers must be detected");
    assert!(err.to_string().contains("action[n5]"), "{err}");
}
