//! Differential tests for change propagation: the trace-replay path must
//! produce exactly the values of the legacy dirty-set re-contraction (and
//! of the sequential oracle) over long random edit scripts, across the
//! whole shape zoo, for invertible and non-invertible algebras alike.

use dtc_core::gen::{self, ChurnOp, XorShift64};
use dtc_core::{DynForest, ExprEval, ExprLabel, Forest, MinMax, NodeId, Propagate, SubtreeSum};

/// Every shape the propagator has to survive, including the adversarial
/// depth (path, broom handle) and degree (star, broom head) extremes.
fn shape_zoo(n: usize, seed: u64) -> Vec<(String, Forest<i64>)> {
    vec![
        (format!("random_tree({n})"), gen::random_tree(n, seed)),
        (format!("path({n})"), gen::path(n, seed)),
        (format!("star({n})"), gen::star(n, seed)),
        (
            format!("caterpillar({},4)", n / 5),
            gen::caterpillar(n / 5, 4, seed),
        ),
        (format!("binary_tree({n})"), gen::binary_tree(n, seed)),
        (
            format!("broom({},{})", n / 2, n / 2),
            gen::broom(n / 2, n / 2, seed),
        ),
        (
            format!("random_forest({n},7)"),
            gen::random_forest(n, 7, seed),
        ),
    ]
}

/// Applies the same label-edit script to a propagating forest and a
/// legacy-path twin, checking both against each other and the oracle
/// after every batch.
fn diff_label_script<A>(name: &str, forest: Forest<A::Label>, alg: A, edits: usize, seed: u64)
where
    A: Propagate<Label = i64>,
    A::Val: std::fmt::Debug,
{
    let n = forest.len();
    let mut rng = XorShift64::new(seed);
    let mut fast = DynForest::with_seed(forest, alg.clone(), 0xFA57);
    let mut slow = fast.clone();
    slow.set_propagation(false);
    assert!(fast.propagation_enabled() && !slow.propagation_enabled());

    let mut done = 0usize;
    while done < edits {
        let batch_len = 1 + rng.below(16) as usize;
        let updates: Vec<(NodeId, i64)> = (0..batch_len.min(edits - done))
            .map(|_| {
                (
                    NodeId::from_index(rng.below(n as u64) as usize),
                    rng.weight(),
                )
            })
            .collect();
        done += updates.len();
        fast.batch_update_weights(&updates);
        slow.batch_update_weights(&updates);
        let fstats = fast.recompute();
        let sstats = slow.recompute();
        assert_eq!(
            fstats.replayed_slots + fstats.reused_slots,
            fstats.total,
            "{name}: replay stats must partition the trace"
        );
        assert_eq!(
            sstats.replayed_slots + sstats.reused_slots,
            sstats.total,
            "{name}: legacy stats must partition the trace"
        );
        let oracle = fast.forest().sequential_fold(&alg);
        for v in fast.forest().node_ids() {
            let f = fast.subtree_value(v);
            assert_eq!(f, slow.subtree_value(v), "{name}: paths diverge at {v}");
            assert_eq!(f, oracle[v.index()], "{name}: oracle mismatch at {v}");
        }
    }
}

#[test]
fn propagation_matches_legacy_across_shape_zoo() {
    for (name, f) in shape_zoo(600, 0xD1FF) {
        diff_label_script(&name, f, SubtreeSum, 120, 0x5C41A7);
    }
}

#[test]
fn propagation_matches_legacy_for_noninvertible_minmax() {
    for (name, f) in shape_zoo(400, 0x3A11) {
        diff_label_script(&name, f, MinMax, 80, 0xBEEF);
    }
}

#[test]
fn propagation_matches_legacy_for_expressions() {
    let f = gen::random_expr(2_000, 9);
    let leaves: Vec<NodeId> = f
        .node_ids()
        .filter(|&v| matches!(f.label(v), ExprLabel::Leaf(_)))
        .collect();
    let mut fast = DynForest::with_seed(f, ExprEval, 0xE4);
    let mut slow = fast.clone();
    slow.set_propagation(false);

    let mut rng = XorShift64::new(0xAB);
    for _ in 0..40 {
        let updates: Vec<(NodeId, ExprLabel)> = (0..1 + rng.below(8))
            .map(|_| {
                let v = leaves[rng.below(leaves.len() as u64) as usize];
                (v, ExprLabel::Leaf(rng.below(7) as i64 - 3))
            })
            .collect();
        fast.batch_update_weights(&updates);
        slow.batch_update_weights(&updates);
        fast.recompute();
        slow.recompute();
        let oracle = fast.forest().sequential_fold(&ExprEval);
        for v in fast.forest().node_ids() {
            let got = fast.subtree_value(v);
            assert_eq!(got, slow.subtree_value(v), "expr paths diverge at {v}");
            assert_eq!(got, oracle[v.index()], "expr oracle mismatch at {v}");
        }
    }
}

/// Churn scripts interleave structural edits (which force the legacy
/// fallback and invalidate the replay tables) with label edits (which
/// re-anchor on a fresh contraction and then propagate again); values
/// must stay exact through every transition.
#[test]
fn propagation_survives_structural_churn_and_reanchors() {
    let (f, script) = gen::churn(500, 200, 0xC08A);
    let mut d = DynForest::with_seed(f, SubtreeSum, 0x11);
    for (i, chunk) in script.chunks(8).enumerate() {
        for &op in chunk {
            match op {
                ChurnOp::Cut(v) => d.batch_cut(&[v]),
                ChurnOp::Link { child, parent } => d.batch_link(&[(child, parent)]),
                ChurnOp::Weight(v, w) => d.batch_update_weights(&[(v, w)]),
            }
        }
        d.recompute();
        let oracle = d.forest().sequential_fold(&SubtreeSum);
        for v in d.forest().node_ids() {
            assert_eq!(
                d.subtree_value(v),
                oracle[v.index()],
                "churn chunk {i}: mismatch at {v}"
            );
        }
    }
    // A label-only batch after all that churn exercises the re-anchor
    // (full contraction) and then pure propagation on the new trace.
    d.batch_update_weights(&[(NodeId::from_index(3), 1_000)]);
    let stats = d.recompute();
    assert_eq!(stats.replayed_slots, stats.total, "re-anchor replays all");
    d.batch_update_weights(&[(NodeId::from_index(3), -7)]);
    let stats = d.recompute();
    assert!(
        stats.replayed_slots < stats.total,
        "post-anchor batches propagate incrementally again"
    );
    let oracle = d.forest().sequential_fold(&SubtreeSum);
    for v in d.forest().node_ids() {
        assert_eq!(d.subtree_value(v), oracle[v.index()]);
    }
}

/// The whole point of the accumulator caches: a small edit batch must not
/// replay the world, even on the depth/degree-adversarial shapes where
/// the dirty-path baseline degenerates to O(n).
#[test]
fn small_batches_replay_few_slots_on_adversarial_shapes() {
    let n = 50_000usize;
    for (name, f) in [
        ("path", gen::path(n, 5)),
        ("star", gen::star(n, 5)),
        ("random", gen::random_tree(n, 5)),
        ("broom", gen::broom(n / 2, n / 2, 5)),
    ] {
        let mut d = DynForest::with_seed(f, SubtreeSum, 0x909);
        d.batch_update_weights(&[(NodeId::from_index(n - 1), 42)]);
        let stats = d.recompute();
        assert!(
            stats.replayed_slots * 10 < stats.total,
            "{name}: single edit replayed {} of {} slots",
            stats.replayed_slots,
            stats.total
        );
    }
}

/// Cutoff: a replayed slot that reproduces its recorded contribution
/// stops the wave. An identity edit still climbs its compress chain (one
/// survivor hop per trace round, O(log n) of them) but must cut off at
/// the first rake instead of replaying the whole path to the root.
#[test]
fn minmax_cutoff_stops_the_wave() {
    let n = 20_000usize;
    let f = gen::path(n, 7);
    let mid_weight = *f.label(NodeId::from_index(n / 2));
    let mut d = DynForest::with_seed(f, MinMax, 0x7777);
    d.batch_update_weights(&[(NodeId::from_index(n / 2), mid_weight)]);
    let stats = d.recompute();
    assert!(
        stats.replayed_slots <= 64,
        "identity edit replayed {} slots (expected O(log n))",
        stats.replayed_slots
    );
    let oracle = d.forest().sequential_fold(&MinMax);
    for v in d.forest().node_ids() {
        assert_eq!(d.subtree_value(v), oracle[v.index()]);
    }
}

/// Bit-identical guarantee, checked by the crate's own validator up to
/// 10⁵ nodes (`check` feature).
#[cfg(feature = "check")]
#[test]
fn validator_confirms_value_identity_at_100k() {
    let n = 100_000usize;
    let mut d = DynForest::with_seed(gen::random_tree(n, 0x51DE), SubtreeSum, 0xF00);
    d.validate().unwrap();
    d.validate_values().unwrap();
    let mut rng = XorShift64::new(0xFACE);
    for _ in 0..5 {
        let updates: Vec<(NodeId, i64)> = (0..200)
            .map(|_| {
                (
                    NodeId::from_index(rng.below(n as u64) as usize),
                    rng.weight(),
                )
            })
            .collect();
        d.batch_update_weights(&updates);
        d.recompute();
        d.validate().unwrap();
        d.validate_values().unwrap();
    }
}
