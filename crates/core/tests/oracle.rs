//! Property tests: contraction must agree with the sequential fold oracle
//! on every node of every shape, under any coin seed.

use dtc_core::gen;
use dtc_core::{Algebra, ExprEval, Forest, SubtreeSum};

fn check_against_oracle<A>(name: &str, forest: &Forest<A::Label>, alg: &A, seed: u64)
where
    A: Algebra,
    A::Val: PartialEq + std::fmt::Debug,
{
    let contraction = forest.contraction().seed(seed).run(alg);
    let oracle = forest.sequential_fold(alg);
    for v in forest.node_ids() {
        assert_eq!(
            contraction.subtree_value(v),
            &oracle[v.index()],
            "{name}: mismatch at {v} (seed {seed})"
        );
    }
    // Component aggregates are the root subtree values.
    let mut seen_roots = 0;
    for (root, val) in contraction.components() {
        assert!(forest.is_root(*root), "{name}: component root {root}");
        assert_eq!(val, &oracle[root.index()], "{name}: component at {root}");
        seen_roots += 1;
    }
    assert_eq!(
        seen_roots,
        forest.roots().count(),
        "{name}: one component per root"
    );
    // Every node must carry a round stamp.
    for v in forest.node_ids() {
        assert!(
            contraction.death_round(v) >= 1,
            "{name}: {v} has no round stamp"
        );
    }
}

#[test]
fn sum_matches_oracle_on_random_trees() {
    for &n in &[1usize, 2, 3, 10, 100, 1_000, 10_000] {
        for seed in 1..=3u64 {
            let f = gen::random_tree(n, seed);
            check_against_oracle(&format!("random_tree({n})"), &f, &SubtreeSum, seed);
        }
    }
}

#[test]
fn sum_matches_oracle_on_paths_stars_caterpillars() {
    for &n in &[2usize, 17, 256, 4_000] {
        check_against_oracle(&format!("path({n})"), &gen::path(n, 9), &SubtreeSum, 1);
        check_against_oracle(&format!("star({n})"), &gen::star(n, 9), &SubtreeSum, 1);
    }
    for &(spine, legs) in &[(1usize, 5usize), (50, 3), (500, 2)] {
        let f = gen::caterpillar(spine, legs, 11);
        check_against_oracle(&format!("caterpillar({spine},{legs})"), &f, &SubtreeSum, 1);
    }
}

#[test]
fn sum_matches_oracle_on_binary_trees_and_brooms() {
    for &n in &[1usize, 2, 7, 255, 4_096] {
        let f = gen::binary_tree(n, 13);
        check_against_oracle(&format!("binary_tree({n})"), &f, &SubtreeSum, 1);
    }
    for &(handle, bristles) in &[(1usize, 5usize), (100, 0), (500, 500), (2_000, 50)] {
        let f = gen::broom(handle, bristles, 13);
        check_against_oracle(&format!("broom({handle},{bristles})"), &f, &SubtreeSum, 1);
    }
}

#[test]
fn sum_matches_oracle_on_100k_random_tree() {
    let n = 100_000;
    let f = gen::random_tree(n, 4242);
    let contraction = f.contraction().run(&SubtreeSum);
    let oracle = f.sequential_fold(&SubtreeSum);
    assert_eq!(contraction.values(), &oracle[..]);
    // Rake + randomized compress finishes in O(log n) rounds w.h.p.
    assert!(
        contraction.rounds() < 200,
        "too many rounds: {}",
        contraction.rounds()
    );
}

#[test]
fn sum_matches_oracle_on_forests() {
    for &(n, roots) in &[(100usize, 7usize), (5_000, 100), (1_000, 1_000)] {
        let f = gen::random_forest(n, roots, 5);
        check_against_oracle(&format!("random_forest({n},{roots})"), &f, &SubtreeSum, 2);
    }
}

#[test]
fn expr_matches_oracle_on_random_trees() {
    for &leaves in &[1usize, 2, 5, 64, 1_000, 20_000] {
        for seed in 1..=3u64 {
            let f = gen::random_expr(leaves, seed);
            check_against_oracle(&format!("random_expr({leaves})"), &f, &ExprEval, seed);
        }
    }
}

#[test]
fn result_is_seed_independent() {
    let f = gen::random_tree(2_000, 77);
    let reference = f.contraction().seed(0).run(&SubtreeSum);
    for seed in 1..=10u64 {
        let c = f.contraction().seed(seed).run(&SubtreeSum);
        assert_eq!(c.values(), reference.values(), "seed {seed}");
    }
}
