//! Batch-dynamic update tests: correctness against the sequential oracle
//! and dirty-set locality (re-contraction must not touch the whole forest).

use dtc_core::gen::{self, XorShift64};
use dtc_core::{DynForest, ExprEval, ExprLabel, Forest, NodeId, SubtreeSum};

fn assert_matches_oracle(d: &DynForest<SubtreeSum>, context: &str) {
    let oracle = d.forest().sequential_fold(&SubtreeSum);
    for v in d.forest().node_ids() {
        assert_eq!(
            d.subtree_value(v),
            oracle[v.index()],
            "{context}: mismatch at {v}"
        );
    }
}

#[test]
fn initial_contraction_matches_static() {
    let f = gen::random_tree(5_000, 21);
    let stat = f.contraction().run(&SubtreeSum);
    let d = DynForest::new(f, SubtreeSum);
    for v in d.forest().node_ids() {
        assert_eq!(d.subtree_value(v), *stat.subtree_value(v));
    }
}

#[test]
fn fuzz_cut_link_update_against_oracle() {
    let mut rng = XorShift64::new(0xFEED_F00D);
    let n = 400u64;
    let mut d = DynForest::new(gen::random_tree(n as usize, 33), SubtreeSum);

    for step in 0..120 {
        let v = NodeId::from_index(rng.below(n) as usize);
        match rng.below(3) {
            0 => {
                // Cut, unless v is already a root.
                if !d.forest().is_root(v) {
                    d.batch_cut(&[v]);
                }
            }
            1 => {
                // Link some root under a node outside its subtree.
                let root = d.root_of(v);
                let target = NodeId::from_index(rng.below(n) as usize);
                if d.root_of(target) != root {
                    d.batch_link(&[(root, target)]);
                }
            }
            _ => {
                let w = rng.weight();
                d.batch_update_weights(&[(v, w)]);
            }
        }
        let stats = d.recompute();
        assert!(stats.dirty <= stats.total);
        assert_matches_oracle(&d, &format!("fuzz step {step}"));
    }
}

#[test]
fn batch_of_mixed_ops_in_one_recompute() {
    let mut rng = XorShift64::new(77);
    let n = 2_000usize;
    let mut d = DynForest::new(gen::random_tree(n, 5), SubtreeSum);

    let mut cuts = Vec::new();
    let mut updates = Vec::new();
    for i in 0..200 {
        let v = NodeId::from_index(1 + rng.below((n - 1) as u64) as usize);
        if i % 2 == 0 && !d.forest().is_root(v) && !cuts.contains(&v) {
            cuts.push(v);
        } else {
            updates.push((v, i as i64));
        }
    }
    d.batch_cut(&cuts);
    d.batch_update_weights(&updates);
    let stats = d.recompute();
    assert!(stats.dirty > 0 && stats.dirty < stats.total);
    assert_matches_oracle(&d, "mixed batch");
}

#[test]
fn thousand_edge_cut_link_round_trip_is_incremental() {
    let n = 100_000usize;
    let forest = gen::random_tree(n, 1234);
    let original = forest.contraction().run(&SubtreeSum);
    let mut d = DynForest::new(forest, SubtreeSum);

    // Pick 1k distinct non-root nodes and remember their parents.
    let mut rng = XorShift64::new(0xC0FFEE);
    let mut cuts: Vec<NodeId> = Vec::new();
    let mut seen = vec![false; n];
    while cuts.len() < 1_000 {
        let v = NodeId::from_index(1 + rng.below((n - 1) as u64) as usize);
        if !seen[v.index()] {
            seen[v.index()] = true;
            cuts.push(v);
        }
    }
    let parents: Vec<NodeId> = cuts
        .iter()
        .map(|&v| d.forest().parent(v).expect("non-root"))
        .collect();

    d.batch_cut(&cuts);
    assert!(d.pending() > 0);
    let stats = d.recompute();
    assert!(
        stats.dirty < stats.total,
        "cut batch must not recompute the whole forest ({} vs {})",
        stats.dirty,
        stats.total
    );
    assert_eq!(d.forest().roots().count(), 1 + cuts.len());
    assert_matches_oracle(&d, "after 1k cuts");

    // Link everything back; the structure (and therefore every subtree
    // value) must return to the original contraction.
    let links: Vec<(NodeId, NodeId)> = cuts.iter().copied().zip(parents).collect();
    d.batch_link(&links);
    let stats = d.recompute();
    assert!(
        stats.dirty < stats.total,
        "link batch must not recompute the whole forest ({} vs {})",
        stats.dirty,
        stats.total
    );
    assert_eq!(d.forest().roots().count(), 1);
    for v in d.forest().node_ids() {
        assert_eq!(d.subtree_value(v), *original.subtree_value(v));
    }
}

#[test]
fn weight_update_batch_is_incremental() {
    let n = 100_000usize;
    let mut d = DynForest::new(gen::random_tree(n, 99), SubtreeSum);
    let updates: Vec<(NodeId, i64)> = (0..500)
        .map(|i| (NodeId::from_index(i * 199 + 1), i as i64))
        .collect();
    d.batch_update_weights(&updates);
    let stats = d.recompute();
    assert!(stats.dirty > 0 && stats.dirty < stats.total);
    assert_matches_oracle(&d, "weight updates");
}

#[test]
fn expression_leaf_updates() {
    let f = gen::random_expr(5_000, 64);
    let leaves: Vec<NodeId> = f
        .node_ids()
        .filter(|&v| matches!(f.label(v), ExprLabel::Leaf(_)))
        .collect();
    let mut d = DynForest::new(f, ExprEval);

    let updates: Vec<(NodeId, ExprLabel)> = leaves
        .iter()
        .step_by(17)
        .enumerate()
        .map(|(i, &v)| (v, ExprLabel::Leaf((i % 5) as i64 - 2)))
        .collect();
    d.batch_update_weights(&updates);
    let stats = d.recompute();
    assert!(stats.dirty < stats.total);

    let oracle = d.forest().sequential_fold(&ExprEval);
    for v in d.forest().node_ids() {
        assert_eq!(d.subtree_value(v), oracle[v.index()], "expr at {v}");
    }
}

#[test]
fn star_cut_batch_under_high_degree_node() {
    // Cutting many children of one very high-degree node exercises the
    // O(1) child-slot removal path; with a linear scan this would be
    // quadratic in the batch size.
    let n = 100_000usize;
    let f = gen::star(n, 12);
    let mut d = DynForest::new(f, SubtreeSum);
    let root = d.root_of(NodeId::from_index(1));
    let cuts: Vec<NodeId> = (1..=20_000).map(NodeId::from_index).collect();
    d.batch_cut(&cuts);
    let stats = d.recompute();
    assert!(stats.dirty < stats.total);
    assert_matches_oracle(&d, "star cuts");
    // And link a few back.
    d.batch_link(&cuts[..100].iter().map(|&v| (v, root)).collect::<Vec<_>>());
    d.recompute();
    assert_matches_oracle(&d, "star relink");
}

#[test]
fn noop_recompute_is_free() {
    let mut d = DynForest::new(gen::random_tree(1_000, 3), SubtreeSum);
    let stats = d.recompute();
    assert_eq!(stats.dirty, 0);
    assert_eq!(stats.rounds, 0);
}

#[test]
#[should_panic(expected = "pending updates")]
fn reading_a_dirty_node_panics() {
    let mut f = Forest::new();
    let r = f.add_root(1i64);
    let mut d = DynForest::new(f, SubtreeSum);
    d.batch_update_weights(&[(r, 2)]);
    let _ = d.subtree_value(r);
}

#[test]
#[should_panic(expected = "inside child's subtree")]
fn linking_under_own_subtree_panics() {
    let mut f = Forest::new();
    let r = f.add_root(1i64);
    let a = f.add_child(r, 2);
    let mut d = DynForest::new(f, SubtreeSum);
    d.batch_cut(&[a]);
    d.recompute();
    let _ = r;
    // `a` is now a root; linking it under its own subtree (itself) must panic.
    d.batch_link(&[(a, a)]);
}
