//! Degenerate inputs: empty forest, tiny trees, deep paths (stack-safety),
//! and fully disconnected forests.

use dtc_core::gen;
use dtc_core::{DynForest, Forest, SubtreeSum};

#[test]
fn empty_forest() {
    let f = Forest::<i64>::new();
    let c = f.contraction().run(&SubtreeSum);
    assert!(c.components().is_empty());
    assert_eq!(c.rounds(), 0);
    assert!(f.sequential_fold(&SubtreeSum).is_empty());

    let mut d = DynForest::new(f, SubtreeSum);
    let stats = d.recompute();
    assert_eq!((stats.dirty, stats.total), (0, 0));
    assert!(d.is_empty());
}

#[test]
fn single_node() {
    let mut f = Forest::new();
    let r = f.add_root(42i64);
    let c = f.contraction().run(&SubtreeSum);
    assert_eq!(c.components(), &[(r, 42)]);
    assert_eq!(*c.subtree_value(r), 42);
    assert_eq!(c.rounds(), 1);
}

#[test]
fn two_node_tree() {
    let mut f = Forest::new();
    let r = f.add_root(1i64);
    let c = f.add_child(r, 2);
    let res = f.contraction().run(&SubtreeSum);
    assert_eq!(*res.subtree_value(r), 3);
    assert_eq!(*res.subtree_value(c), 2);
    // Leaf rakes in round 1, root finishes in round 2.
    assert_eq!(res.death_round(c), 1);
    assert_eq!(res.death_round(r), 2);
}

#[test]
fn deep_path_is_recursion_free() {
    // 100k-deep path: both contraction and the oracle must run without
    // recursion, and dropping the forest must not blow the stack either.
    let n = 100_000;
    let f = gen::path(n, 3);
    let oracle = f.sequential_fold(&SubtreeSum);
    let c = f.contraction().run(&SubtreeSum);
    assert_eq!(c.values(), &oracle[..]);
    assert!(c.rounds() < 300, "path rounds: {}", c.rounds());
}

#[test]
fn forest_of_isolated_nodes() {
    let n = 1_000;
    let f = gen::random_forest(n, n, 8);
    let c = f.contraction().run(&SubtreeSum);
    assert_eq!(c.components().len(), n);
    assert_eq!(c.rounds(), 1);
    for (root, val) in c.components() {
        assert_eq!(val, f.label(*root));
    }
}

#[test]
fn forest_of_disconnected_components() {
    let f = gen::random_forest(10_000, 37, 15);
    let c = f.contraction().run(&SubtreeSum);
    let oracle = f.sequential_fold(&SubtreeSum);
    assert_eq!(c.components().len(), 37);
    assert_eq!(c.values(), &oracle[..]);
}
