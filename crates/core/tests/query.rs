//! Oracle tests for the batch query engine: every query kind must agree
//! with a naive sequential walk of the forest, on every shape, and the
//! non-panicking edit/read APIs must fail cleanly and roll back.

use dtc_core::{
    gen, Answer, DynForest, EditError, ExprEval, Forest, MinMax, NodeId, OrderedRake, PathAlgebra,
    Query, QueryBatch, QueryError, SeqHash, SubtreeSum,
};

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn depth<L>(f: &Forest<L>, mut v: NodeId) -> usize {
    let mut d = 0;
    while let Some(p) = f.parent(v) {
        v = p;
        d += 1;
    }
    d
}

/// LCA by the two-pointer depth walk; `None` across components.
fn naive_lca<L>(f: &Forest<L>, mut u: NodeId, mut v: NodeId) -> Option<NodeId> {
    let (mut du, mut dv) = (depth(f, u), depth(f, v));
    while du > dv {
        u = f.parent(u).unwrap();
        du -= 1;
    }
    while dv > du {
        v = f.parent(v).unwrap();
        dv -= 1;
    }
    while u != v {
        match (f.parent(u), f.parent(v)) {
            (Some(pu), Some(pv)) => {
                u = pu;
                v = pv;
            }
            _ => return None,
        }
    }
    Some(u)
}

/// All nodes on the tree path `u..=v` (via the LCA); `None` across
/// components.
fn naive_path_nodes<L>(f: &Forest<L>, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    let w = naive_lca(f, u, v)?;
    let mut nodes = vec![w];
    let mut x = u;
    while x != w {
        nodes.push(x);
        x = f.parent(x).unwrap();
    }
    let mut x = v;
    while x != w {
        nodes.push(x);
        x = f.parent(x).unwrap();
    }
    Some(nodes)
}

/// Builds a mixed batch of `nq` random queries and checks every answer
/// against the naive oracles.
fn check_queries<A>(name: &str, f: &Forest<A::Label>, alg: &A, nq: usize, seed: u64)
where
    A: PathAlgebra + Sync,
    A::Label: Sync,
    A::Val: Send + Sync + PartialEq + std::fmt::Debug,
    A::PathVal: Send + Sync + PartialEq + std::fmt::Debug,
{
    let c = f.contraction().seed(seed).run(alg);
    let oracle = f.sequential_fold(alg);
    let n = f.len();
    let mut rng = seed | 1;
    let mut batch = QueryBatch::with_capacity(nq);
    for i in 0..nq {
        let u = NodeId::from_index((xorshift(&mut rng) % n as u64) as usize);
        let v = NodeId::from_index((xorshift(&mut rng) % n as u64) as usize);
        match i % 5 {
            0 => batch.subtree(u),
            1 => batch.path(u, v),
            2 => batch.lca(u, v),
            3 => batch.component_root(u),
            _ => batch.component_value(u),
        };
    }
    let answers = c.query_batch(f, alg, &batch).unwrap();
    assert_eq!(answers.len(), nq, "{name}: one answer per query");
    for (i, (q, a)) in batch.queries().iter().zip(&answers).enumerate() {
        let a = a
            .as_ref()
            .unwrap_or_else(|e| panic!("{name}: query {i} failed: {e}"));
        match *q {
            Query::Subtree(v) => {
                assert_eq!(
                    a,
                    &Answer::Value(oracle[v.index()].clone()),
                    "{name}: q{i} {q:?}"
                );
            }
            Query::ComponentRoot(v) => {
                assert_eq!(a, &Answer::Node(f.root_of(v)), "{name}: q{i} {q:?}");
            }
            Query::ComponentValue(v) => {
                let r = f.root_of(v);
                assert_eq!(
                    a,
                    &Answer::Value(oracle[r.index()].clone()),
                    "{name}: q{i} {q:?}"
                );
            }
            Query::Lca(u, v) => match naive_lca(f, u, v) {
                Some(w) => assert_eq!(a, &Answer::Node(w), "{name}: q{i} {q:?}"),
                None => assert_eq!(a, &Answer::NotConnected, "{name}: q{i} {q:?}"),
            },
            Query::Path(u, v) => match naive_path_nodes(f, u, v) {
                Some(nodes) => {
                    let mut agg = alg.path_empty();
                    for w in nodes {
                        agg = alg.path_concat(&agg, &alg.path_of(f.label(w)));
                    }
                    assert_eq!(a, &Answer::PathValue(agg), "{name}: q{i} {q:?}");
                }
                None => assert_eq!(a, &Answer::NotConnected, "{name}: q{i} {q:?}"),
            },
        }
    }
}

#[test]
fn queries_match_oracle_on_all_shapes_100k() {
    check_queries(
        "random_tree(1e5)",
        &gen::random_tree(100_000, 31),
        &SubtreeSum,
        400,
        1,
    );
    // Naive oracles walk O(depth) per query, so deep shapes get fewer.
    check_queries("path(1e5)", &gen::path(100_000, 32), &SubtreeSum, 120, 2);
    check_queries("star(1e5)", &gen::star(100_000, 33), &SubtreeSum, 400, 3);
    check_queries(
        "caterpillar(5e4,1)",
        &gen::caterpillar(50_000, 1, 34),
        &SubtreeSum,
        200,
        4,
    );
}

#[test]
fn queries_match_oracle_under_other_algebras() {
    check_queries(
        "minmax random",
        &gen::random_tree(20_000, 7),
        &MinMax,
        300,
        5,
    );
    check_queries(
        "minmax caterpillar",
        &gen::caterpillar(2_000, 4, 8),
        &MinMax,
        300,
        6,
    );
    check_queries(
        "expr random",
        &gen::random_expr(20_000, 9),
        &ExprEval,
        300,
        7,
    );
}

#[test]
fn queries_match_oracle_on_forests_and_cross_component() {
    let f = gen::random_forest(10_000, 50, 21);
    check_queries("random_forest(1e4,50)", &f, &SubtreeSum, 500, 8);
    // Two nodes in provably different components.
    let roots: Vec<NodeId> = f.roots().collect();
    assert!(roots.len() >= 2);
    let (a, b) = (roots[0], roots[1]);
    let c = f.contraction().run(&SubtreeSum);
    let mut batch = QueryBatch::new();
    batch.lca(a, b).path(a, b);
    let answers = c.query_batch(&f, &SubtreeSum, &batch).unwrap();
    assert_eq!(answers[0], Ok(Answer::NotConnected));
    assert_eq!(answers[1], Ok(Answer::NotConnected));
}

#[test]
fn degenerate_shapes_and_empty_batches() {
    // Single node: every self-query is well defined.
    let mut f = Forest::new();
    let r = f.add_root(41i64);
    let c = f.contraction().run(&SubtreeSum);
    let mut batch = QueryBatch::new();
    batch
        .subtree(r)
        .path(r, r)
        .lca(r, r)
        .component_root(r)
        .component_value(r);
    let answers = c.query_batch(&f, &SubtreeSum, &batch).unwrap();
    assert_eq!(answers[0], Ok(Answer::Value(41)));
    assert_eq!(answers[1], Ok(Answer::PathValue(41)));
    assert_eq!(answers[2], Ok(Answer::Node(r)));
    assert_eq!(answers[3], Ok(Answer::Node(r)));
    assert_eq!(answers[4], Ok(Answer::Value(41)));
    // Empty batch resolves to an empty answer vector.
    assert_eq!(
        c.query_batch(&f, &SubtreeSum, &QueryBatch::new()).unwrap(),
        vec![]
    );
}

#[test]
fn unknown_nodes_fail_per_query_without_poisoning_the_batch() {
    let f = gen::random_tree(100, 3);
    let c = f.contraction().run(&SubtreeSum);
    let bogus = NodeId::from_index(f.len() + 5);
    let good = NodeId::from_index(7);
    let mut batch = QueryBatch::new();
    batch.subtree(bogus).subtree(good).lca(good, bogus);
    let answers = c.query_batch(&f, &SubtreeSum, &batch).unwrap();
    assert_eq!(
        answers[0],
        Err(QueryError::UnknownNode {
            node: bogus,
            nodes: f.len()
        })
    );
    assert!(
        answers[1].is_ok(),
        "good query unaffected by bad neighbours"
    );
    assert_eq!(
        answers[2],
        Err(QueryError::UnknownNode {
            node: bogus,
            nodes: f.len()
        })
    );
}

#[test]
fn mismatched_forest_is_rejected_at_the_batch_level() {
    let f1 = gen::random_tree(100, 3);
    let f2 = gen::random_tree(200, 3);
    let c = f1.contraction().run(&SubtreeSum);
    let mut batch = QueryBatch::new();
    batch.subtree(NodeId::from_index(0));
    assert_eq!(
        c.query_batch(&f2, &SubtreeSum, &batch),
        Err(QueryError::ForestMismatch {
            forest_nodes: 200,
            contraction_nodes: 100
        })
    );
}

#[test]
fn dyn_forest_guards_stale_reads_and_pending_queries() {
    let mut f = Forest::new();
    let r = f.add_root(1i64);
    let a = f.add_child(r, 2);
    let leaf = f.add_child(a, 3);
    let mut d = DynForest::new(f, SubtreeSum);

    assert_eq!(d.try_subtree_value(r), Ok(6));
    assert_eq!(d.try_component_value(leaf), Ok(6));
    let mut batch = QueryBatch::new();
    batch.subtree(a).path(leaf, r);
    assert!(d.query_batch(&batch).is_ok());

    d.batch_update_weights(&[(leaf, 30)]);
    // Stale paths are refused, clean subtrees still readable.
    assert_eq!(d.try_subtree_value(r), Err(QueryError::Stale { node: r }));
    assert_eq!(
        d.try_component_value(leaf),
        Err(QueryError::Stale { node: r })
    );
    assert_eq!(
        d.query_batch(&batch),
        Err(QueryError::PendingEdits {
            pending: d.pending()
        })
    );
    let bogus = NodeId::from_index(99);
    assert_eq!(
        d.try_subtree_value(bogus),
        Err(QueryError::UnknownNode {
            node: bogus,
            nodes: 3
        })
    );

    d.recompute();
    assert_eq!(d.try_subtree_value(r), Ok(33));
    let answers = d.query_batch(&batch).unwrap();
    assert_eq!(answers[0], Ok(Answer::Value(32)));
    assert_eq!(answers[1], Ok(Answer::PathValue(33)));
}

#[test]
fn failed_edit_batches_roll_back_the_shape() {
    let mut f = Forest::new();
    let r = f.add_root(1i64);
    let a = f.add_child(r, 2);
    let b = f.add_child(r, 3);
    let c = f.add_child(a, 4);
    let mut d = DynForest::new(f, SubtreeSum);
    let parent_of = |d: &DynForest<SubtreeSum>, v: NodeId| d.forest().parent(v);

    // Second cut names a root: the first (valid) cut must be undone.
    assert_eq!(
        d.try_batch_cut(&[a, r]),
        Err(EditError::AlreadyRoot { node: r })
    );
    assert_eq!(parent_of(&d, a), Some(r), "cut of `a` rolled back");

    // Duplicate cut in one batch: second op sees an already-cut node.
    assert_eq!(
        d.try_batch_cut(&[b, b]),
        Err(EditError::AlreadyRoot { node: b })
    );
    assert_eq!(parent_of(&d, b), Some(r), "cut of `b` rolled back");

    // Link whose second op would cycle (`a` is inside `r`'s own subtree):
    // the first (valid) link must be undone.
    d.batch_cut(&[b, c]);
    d.recompute();
    assert_eq!(
        d.try_batch_link(&[(b, a), (r, a)]),
        Err(EditError::WouldCycle {
            child: r,
            parent: a
        })
    );
    assert_eq!(parent_of(&d, b), None, "link of `b` rolled back");
    // Non-root child is rejected outright.
    assert_eq!(
        d.try_batch_link(&[(a, b)]),
        Err(EditError::NotARoot { node: a })
    );
    // After all failed batches, a recompute + reads still agree with a
    // from-scratch fold of the (unchanged) shape.
    d.recompute();
    let oracle = d.forest().sequential_fold(&SubtreeSum);
    for v in [r, a, b, c] {
        assert_eq!(d.subtree_value(v), oracle[v.index()]);
    }
}

#[test]
fn interleaved_edits_queries_and_recomputes_match_oracle() {
    let mut d = DynForest::new(gen::random_tree(2_000, 99), SubtreeSum);
    let mut rng = 0xFEED_u64;
    for round in 0..20 {
        let n = d.len();
        let pick = |rng: &mut u64| NodeId::from_index((xorshift(rng) % n as u64) as usize);
        // A mixed batch of valid edits: cut non-roots, link roots under
        // nodes outside their subtree, and bump weights.
        let mut cuts = Vec::new();
        for _ in 0..8 {
            let v = pick(&mut rng);
            if d.forest().parent(v).is_some() && !cuts.contains(&v) {
                cuts.push(v);
            }
        }
        d.try_batch_cut(&cuts).unwrap();
        let mut links = Vec::new();
        for _ in 0..4 {
            let child = d.forest().root_of(pick(&mut rng));
            let parent = pick(&mut rng);
            if d.forest().root_of(parent) != child && !links.iter().any(|&(c, _)| c == child) {
                links.push((child, parent));
            }
        }
        d.try_batch_link(&links).unwrap();
        let updates: Vec<(NodeId, i64)> = (0..6)
            .map(|_| (pick(&mut rng), (xorshift(&mut rng) % 1_000) as i64))
            .collect();
        d.batch_update_weights(&updates);
        d.recompute();

        // Cached values match a from-scratch fold of the edited shape…
        let oracle = d.forest().sequential_fold(&SubtreeSum);
        for _ in 0..50 {
            let v = pick(&mut rng);
            assert_eq!(d.subtree_value(v), oracle[v.index()], "round {round}");
        }
        // …and so does a mixed query batch resolved over a fresh trace.
        let mut batch = QueryBatch::new();
        for i in 0..60 {
            let (u, v) = (pick(&mut rng), pick(&mut rng));
            match i % 4 {
                0 => batch.subtree(u),
                1 => batch.path(u, v),
                2 => batch.lca(u, v),
                _ => batch.component_value(u),
            };
        }
        let answers = d.query_batch(&batch).unwrap();
        for (q, a) in batch.queries().iter().zip(&answers) {
            let a = a.as_ref().unwrap();
            let f = d.forest();
            match *q {
                Query::Subtree(v) => assert_eq!(a, &Answer::Value(oracle[v.index()])),
                Query::ComponentValue(v) => {
                    assert_eq!(a, &Answer::Value(oracle[f.root_of(v).index()]))
                }
                Query::Lca(u, v) => match naive_lca(f, u, v) {
                    Some(w) => assert_eq!(a, &Answer::Node(w)),
                    None => assert_eq!(a, &Answer::NotConnected),
                },
                Query::Path(u, v) => match naive_path_nodes(f, u, v) {
                    Some(nodes) => {
                        let sum: i64 = nodes.iter().map(|&w| *f.label(w)).sum();
                        assert_eq!(a, &Answer::PathValue(sum));
                    }
                    None => assert_eq!(a, &Answer::NotConnected),
                },
                Query::ComponentRoot(_) => unreachable!(),
            }
        }
    }
}

#[test]
fn ordered_rake_matches_sequential_fold_on_all_shapes() {
    let alg = OrderedRake(SeqHash);
    for seed in 1..=5u64 {
        for (name, f) in [
            ("random_tree(1e4)", gen::random_tree(10_000, 17)),
            ("path(4e3)", gen::path(4_000, 18)),
            ("star(4e3)", gen::star(4_000, 19)),
            ("caterpillar(500,4)", gen::caterpillar(500, 4, 20)),
            ("random_forest(3e3,40)", gen::random_forest(3_000, 40, 21)),
        ] {
            let c = f.contraction().seed(seed).run(&alg);
            let oracle = f.sequential_fold(&alg);
            assert_eq!(c.values(), &oracle[..], "{name} seed {seed}");
        }
    }
}

#[test]
fn ordered_rake_survives_dynamic_weight_updates() {
    // Weight-only edits never perturb child-list order, so the ordered
    // semantics stay oracle-exact under incremental recomputes.
    let alg = OrderedRake(SeqHash);
    let mut d = DynForest::new(gen::random_tree(3_000, 55), alg);
    let mut rng = 0xBEEF_u64;
    for round in 0..10 {
        let n = d.len();
        let updates: Vec<(NodeId, i64)> = (0..16)
            .map(|_| {
                let v = NodeId::from_index((xorshift(&mut rng) % n as u64) as usize);
                (v, (xorshift(&mut rng) % 1_000) as i64)
            })
            .collect();
        d.batch_update_weights(&updates);
        d.recompute();
        let oracle = d.forest().sequential_fold(&OrderedRake(SeqHash));
        for v in d.forest().node_ids() {
            assert_eq!(d.subtree_value(v), oracle[v.index()], "round {round}");
        }
    }
}
