//! Telemetry-layer tests: counter conservation, histogram percentile
//! correctness, and profiled-vs-unprofiled result equivalence.

use dtc_core::obs::{LatencyHistogram, Phase, Profile, RoundCounters, Sink};
use dtc_core::{gen, DynForest, Forest, NodeId, SubtreeSum};

/// Every action retires exactly one node, so across a full contraction
/// `rakes + splices + finishes == n`, and within each round the retirements
/// account exactly for the frontier shrinkage.
fn assert_conservation(f: &Forest<i64>, n: u64) {
    let c = f.contraction().seed(0xAB5EED).profiled().run(&SubtreeSum);
    let prof = c.profile().expect("contract_profiled attaches a profile");
    assert_eq!(prof.runs(), if n == 0 { 0 } else { 1 });
    assert_eq!(prof.total_retired(), n, "every node dies exactly once");
    assert_eq!(prof.max_rounds(), c.rounds());

    let rounds = prof.per_round();
    if n > 0 {
        assert_eq!(rounds[0].frontier, n, "round 1 sees the whole active set");
        assert_eq!(prof.max_frontier(), n as usize);
    }
    for (i, r) in rounds.iter().enumerate() {
        let next_frontier = rounds.get(i + 1).map_or(0, |next| next.frontier);
        assert_eq!(
            r.frontier - r.retired(),
            next_frontier,
            "round {} retirements must equal frontier shrinkage",
            i + 1
        );
        assert!(r.retired() > 0, "every round must make progress");
        assert!(
            r.coin_rejections <= r.frontier,
            "at most one rejection per live node"
        );
    }
}

#[test]
fn counters_conserve_nodes_across_shapes() {
    assert_conservation(&gen::random_tree(20_000, 9), 20_000);
    assert_conservation(&gen::path(10_000, 9), 10_000);
    assert_conservation(&gen::star(10_000, 9), 10_000);
    assert_conservation(&gen::caterpillar(2_000, 4, 9), 10_000);
    assert_conservation(&gen::random_forest(5_000, 17, 9), 5_000);
    assert_conservation(&Forest::new(), 0);
}

#[test]
fn profiled_contraction_matches_unprofiled() {
    let f = gen::random_tree(10_000, 33);
    let profiled = f.contraction().seed(0x1234).profiled().run(&SubtreeSum);
    let plain = f.contraction().seed(0x1234).run(&SubtreeSum);
    assert_eq!(profiled.values(), plain.values());
    assert_eq!(profiled.components(), plain.components());
    assert_eq!(profiled.rounds(), plain.rounds());
    assert!(
        plain.profile().is_none(),
        "unprofiled run carries no report"
    );
}

#[test]
fn phase_spans_track_rounds() {
    let f = gen::random_tree(5_000, 5);
    let c = f.contraction().seed(0x77).profiled().run(&SubtreeSum);
    let prof = c.profile().unwrap();
    let rounds = c.rounds() as u64;
    assert_eq!(prof.phase_stats(Phase::Plan).spans(), rounds);
    assert_eq!(prof.phase_stats(Phase::Apply).spans(), rounds);
    assert_eq!(prof.phase_stats(Phase::Backsolve).spans(), 1);
    assert_eq!(prof.phase_stats(Phase::DirtyMark).spans(), 0);
    // Spans are real measurements: totals bound the percentiles.
    let plan = prof.phase_stats(Phase::Plan);
    assert!(plan.p50_ns() <= plan.p99_ns());
    assert!(plan.p99_ns() <= plan.histogram().max().max(1));
}

#[test]
fn paths_exercise_splices_and_coin_rejections() {
    let f = gen::path(10_000, 1);
    let c = f.contraction().seed(0x5EED).profiled().run(&SubtreeSum);
    let prof = c.profile().unwrap();
    assert!(prof.total_splices() > 0, "a long chain must compress");
    assert!(
        prof.total_coin_rejections() > 0,
        "randomized compress must reject some candidates"
    );
    // A star never splices: the root is never unary until the very end.
    let star = gen::star(10_000, 1)
        .contraction()
        .seed(0x5EED)
        .profiled()
        .run(&SubtreeSum);
    assert_eq!(star.profile().unwrap().total_splices(), 0);
}

#[test]
fn dynamic_counters_match_dirty_set_per_recompute() {
    let mut d = DynForest::new(gen::random_tree(10_000, 3), SubtreeSum);
    assert!(!d.profiling_enabled());
    d.enable_profiling();
    assert!(d.profiling_enabled());

    // Label-only batches recompute by trace propagation: no engine run,
    // so the counters report replayed/reused slots, not retirements.
    for batch in 0..5u64 {
        let updates: Vec<(NodeId, i64)> = d
            .forest()
            .node_ids()
            .step_by(101 + batch as usize)
            .take(50)
            .map(|v| (v, batch as i64))
            .collect();
        d.batch_update_weights(&updates);
        let stats = d.recompute();
        let counters = stats.counters.expect("profiling fills counters");
        assert_eq!(
            counters.retired(),
            0,
            "propagation replays slots, it retires nothing"
        );
        assert_eq!(counters.rounds, stats.rounds);
        assert_eq!(counters.replayed_slots, stats.replayed_slots as u64);
        assert_eq!(counters.reused_slots, stats.reused_slots as u64);
        assert!(
            stats.replayed_slots >= stats.dirty,
            "every edited slot replays"
        );
        assert_eq!(stats.replayed_slots + stats.reused_slots, stats.total);
    }

    {
        let prof = d.profile().unwrap();
        assert_eq!(prof.runs(), 0, "propagation recomputes without engine runs");
        assert_eq!(
            prof.phase_stats(Phase::DirtyMark).spans(),
            5,
            "one dirty-mark span per batch edit"
        );
        assert_eq!(
            prof.phase_stats(Phase::Propagate).spans(),
            5,
            "one propagate span per recompute"
        );
        assert_eq!(prof.phase_stats(Phase::Backsolve).spans(), 0);
    }

    // The legacy dirty-set path keeps the engine-run counter semantics.
    d.set_propagation(false);
    let updates: Vec<(NodeId, i64)> = d
        .forest()
        .node_ids()
        .step_by(37)
        .take(50)
        .map(|v| (v, 9))
        .collect();
    d.batch_update_weights(&updates);
    let stats = d.recompute();
    let counters = stats.counters.expect("profiling fills counters");
    assert_eq!(
        counters.retired(),
        stats.dirty as u64,
        "per-run retirements must equal the dirty-set size"
    );
    assert_eq!(counters.rounds, stats.rounds);
    assert_eq!(counters.max_frontier, stats.dirty);
    assert_eq!(
        counters.replayed_slots + counters.reused_slots,
        0,
        "legacy engine counters do not track slot reuse"
    );
    assert_eq!(
        d.profile().unwrap().runs(),
        1,
        "one engine run per legacy recompute"
    );

    // An empty recompute reports zeroed counters, not None.
    let stats = d.recompute();
    assert_eq!(stats.dirty, 0);
    assert_eq!(stats.counters.unwrap().retired(), 0);

    // Detaching the profile disables collection again.
    let prof = d.take_profile().unwrap();
    assert_eq!(prof.runs(), 1);
    assert!(!d.profiling_enabled());
    d.batch_update_weights(&[(NodeId::from_index(0), 7)]);
    assert!(d.recompute().counters.is_none());
}

#[test]
fn unprofiled_updates_report_no_counters() {
    let mut d = DynForest::new(gen::random_tree(1_000, 3), SubtreeSum);
    d.batch_update_weights(&[(NodeId::from_index(0), 7)]);
    let stats = d.recompute();
    assert!(stats.counters.is_none());
    let line = stats.to_string();
    assert!(
        line.contains("of 1000 nodes"),
        "Display names the totals: {line}"
    );
    assert!(
        !line.contains("rakes"),
        "no counters without profiling: {line}"
    );
}

#[test]
fn update_stats_display_includes_counters_when_profiled() {
    let mut d = DynForest::new(gen::random_tree(1_000, 3), SubtreeSum);
    d.enable_profiling();
    d.batch_update_weights(&[(NodeId::from_index(0), 7)]);
    let line = d.recompute().to_string();
    assert!(
        line.contains("rakes"),
        "profiled Display shows counters: {line}"
    );
    assert!(line.contains("peak frontier"), "{line}");
}

#[test]
fn histogram_percentiles_on_uniform_distribution() {
    let mut h = LatencyHistogram::default();
    for v in 1..=100_000u64 {
        h.record(v);
    }
    assert_eq!(h.count(), 100_000);
    assert_eq!(h.min(), 1);
    assert_eq!(h.max(), 100_000);
    for (q, expected) in [(50.0, 50_000.0), (90.0, 90_000.0), (99.0, 99_000.0)] {
        let got = h.percentile(q) as f64;
        let rel = (got - expected).abs() / expected;
        assert!(
            rel < 0.05,
            "p{q} = {got}, expected ≈ {expected} (rel err {rel:.4})"
        );
    }
    let mean = h.mean() as f64;
    assert!((mean - 50_000.5).abs() / 50_000.5 < 0.01, "mean = {mean}");
}

#[test]
fn histogram_percentiles_on_skewed_distribution() {
    // 999 fast ops at ~1µs, 1 outlier at 1s: p50/p90 must ignore the
    // outlier, p100 must find it.
    let mut h = LatencyHistogram::default();
    for _ in 0..999 {
        h.record(1_000);
    }
    h.record(1_000_000_000);
    let p50 = h.percentile(50.0) as f64;
    assert!((p50 - 1_000.0).abs() / 1_000.0 < 0.05, "p50 = {p50}");
    let p100 = h.percentile(100.0) as f64;
    assert!((p100 - 1e9).abs() / 1e9 < 0.05, "p100 = {p100}");
}

#[test]
fn custom_sinks_receive_the_stream() {
    /// Counts callbacks without aggregating, proving the trait is usable
    /// outside the crate.
    #[derive(Default)]
    struct CountingSink {
        spans: u64,
        rounds: u64,
        retired: u64,
    }
    impl Sink for CountingSink {
        fn phase(&mut self, _phase: Phase, _nanos: u64) {
            self.spans += 1;
        }
        fn round(&mut self, c: &RoundCounters) {
            self.rounds += 1;
            self.retired += c.retired() as u64;
        }
    }

    let f = gen::random_tree(2_000, 11);
    let mut sink = CountingSink::default();
    let c = f
        .contraction()
        .seed(0x5EED)
        .run_with(&SubtreeSum, &mut sink);
    assert_eq!(sink.rounds, c.rounds() as u64);
    assert_eq!(sink.retired, 2_000);
    // plan + apply per round, plus one backsolve span.
    assert_eq!(sink.spans, 2 * c.rounds() as u64 + 1);
}

#[test]
fn profile_display_renders_report() {
    let c = gen::random_tree(1_000, 2)
        .contraction()
        .seed(0x5EED)
        .profiled()
        .run(&SubtreeSum);
    let report = c.profile().unwrap().to_string();
    for needle in [
        "profile:",
        "plan",
        "apply",
        "backsolve",
        "frontier",
        "rakes",
    ] {
        assert!(
            report.contains(needle),
            "report missing {needle:?}:\n{report}"
        );
    }
    let mut empty = String::new();
    use std::fmt::Write;
    write!(empty, "{}", Profile::default()).unwrap();
    assert!(empty.contains("0 run(s)"));
}
