//! Contraction and batch-dynamic update benchmarks, broken down by tree
//! shape so depth/degree sensitivity is visible in the numbers.
//!
//! Shapes (all ~100k nodes): `random` (O(log n) depth), `path` (worst-case
//! depth), `star` (worst-case degree), `caterpillar` (deep spine + legs),
//! `binary` (balanced), `broom` (deep handle into a high-degree head).
//! Each shape is exercised three ways: full contraction, a 1k batch of
//! cuts, and a 1k batch of weight updates (the latter driven by change
//! propagation — its records carry `replayed_slots`/`reused_slots`). A
//! churn bench interleaves structural and label edits to price the
//! fallback/re-anchor cycle.
//!
//! Run with `cargo bench -p dtc-bench`, or `cargo bench -p dtc-bench --
//! --test` for the CI smoke mode (each bench executes once). Add
//! `--json BENCH_contract.json` to emit the machine-readable perf record —
//! timing percentiles plus per-round engine counters from a profiled run —
//! that seeds the repo's perf trajectory.

use dtc_bench::{Harness, Json};
use dtc_core::gen;
use dtc_core::gen::ChurnOp;
use dtc_core::obs::{Phase, Profile};
use dtc_core::{
    Answer, Contraction, DynForest, Forest, NodeId, QueryBatch, SubtreeSum, UpdateStats,
};

/// A named lazy forest generator.
type Shape = (&'static str, Box<dyn Fn() -> Forest<i64>>);

/// The shape generators of the breakdown matrix.
fn shapes() -> Vec<Shape> {
    vec![
        (
            "random_100k",
            Box::new(|| gen::random_tree(100_000, 42)) as _,
        ),
        ("path_100k", Box::new(|| gen::path(100_000, 42)) as _),
        ("star_100k", Box::new(|| gen::star(100_000, 42)) as _),
        (
            "caterpillar_100k",
            Box::new(|| gen::caterpillar(20_000, 4, 42)) as _,
        ),
        (
            "binary_100k",
            Box::new(|| gen::binary_tree(100_000, 42)) as _,
        ),
        (
            "broom_100k",
            Box::new(|| gen::broom(50_000, 50_000, 42)) as _,
        ),
    ]
}

fn main() {
    // The per-round invariant sweep and conflict detector behind `check`
    // turn every contraction into a validation run; any number recorded
    // with them on is incomparable with the BENCH_*.json trajectory.
    if dtc_core::check::enabled() {
        eprintln!(
            "dtc-bench: dtc-core was built with the `check` feature; \
             refusing to record benchmark numbers from an instrumented engine"
        );
        std::process::exit(2);
    }

    let h = Harness::from_env();
    h.meta("check", Json::Bool(dtc_core::check::enabled()));

    bench_contract(&h, "contract/random_10k", &|| gen::random_tree(10_000, 42));
    for (shape, make) in shapes() {
        bench_contract(&h, &format!("contract/{shape}"), make.as_ref());
    }

    // Batches of 1k edits against each ~100k-node shape: the state is built
    // once and cloned per iteration so only edit + recompute are measured
    // (clone cost is part of setup, which the harness excludes).
    for (shape, make) in shapes() {
        let base = DynForest::new(make(), SubtreeSum);
        let cuts: Vec<NodeId> = base
            .forest()
            .node_ids()
            .filter(|v| !base.forest().is_root(*v))
            .step_by(97)
            .take(1_000)
            .collect();
        let updates: Vec<(NodeId, i64)> = cuts.iter().map(|&v| (v, 1)).collect();

        let name = format!("batch_cut_1k/{shape}");
        if h.selected(&name) {
            h.bench(
                &name,
                || base.clone(),
                |d| {
                    d.batch_cut(&cuts);
                    d.recompute()
                },
            );
            let mut probe = base.clone();
            probe.enable_profiling();
            probe.batch_cut(&cuts);
            let stats = probe.recompute();
            attach_dyn_report(&h, &name, &stats, probe.profile().unwrap());
        }

        let name = format!("batch_update_1k/{shape}");
        if h.selected(&name) {
            h.bench(
                &name,
                || base.clone(),
                |d| {
                    d.batch_update_weights(&updates);
                    d.recompute()
                },
            );
            let mut probe = base.clone();
            probe.enable_profiling();
            probe.batch_update_weights(&updates);
            let stats = probe.recompute();
            attach_dyn_report(&h, &name, &stats, probe.profile().unwrap());
        }
    }

    // Churn: interleaved cut/link/weight batches against a ~100k random
    // tree, pricing the structural fallback + re-anchor cycle end to end
    // (each chunk of structural ops forces a dirty-set re-contraction, the
    // following label-only chunk pays the one-time full re-anchor and then
    // propagates).
    {
        let (f, script) = gen::churn(100_000, 512, 42);
        let base = DynForest::new(f, SubtreeSum);
        let name = "batch_churn_512/random_100k";
        if h.selected(name) {
            h.bench(
                name,
                || base.clone(),
                |d| {
                    let mut last = None;
                    for chunk in script.chunks(16) {
                        for op in chunk {
                            match *op {
                                ChurnOp::Cut(v) => d.batch_cut(&[v]),
                                ChurnOp::Link { child, parent } => d.batch_link(&[(child, parent)]),
                                ChurnOp::Weight(v, w) => d.batch_update_weights(&[(v, w)]),
                            }
                        }
                        last = Some(d.recompute());
                    }
                    last
                },
            );
            h.attach(name, "ops", Json::num(script.len() as u32));
        }
    }

    // Batch query engine vs 1k individual naive lookups per shape. The
    // batch pays one O(n) context pass over the trace and then O(log² n)
    // per query; the naive baseline pays an O(depth) parent walk per
    // query. Deep shapes (path, caterpillar) are where batching wins by
    // orders of magnitude; shallow shapes show the flat cost of the
    // context pass. Both sides run the same 1k-query mix (250 each of
    // subtree / path / lca / component-value) and are checked against
    // each other once outside the measured region.
    for (shape, make) in shapes() {
        let f = make();
        let contraction = f.contraction().seed(0x5EED).run(&SubtreeSum);
        let batch = mixed_batch(&f, 1_000);
        assert_eq!(
            contraction
                .query_batch(&f, &SubtreeSum, &batch)
                .map(|answers| naive_checksum_of(&answers)),
            Ok(naive_resolve_all(&f, &contraction, &batch)),
            "batch and naive resolutions must agree on {shape}"
        );

        let name = format!("batch_query_1k/{shape}");
        if h.selected(&name) {
            h.bench(
                &name,
                || (),
                |()| {
                    contraction
                        .query_batch(&f, &SubtreeSum, &batch)
                        .unwrap()
                        .len()
                },
            );
            h.attach(&name, "queries", Json::num(batch.len() as u32));
        }
        let name = format!("individual_query_1k/{shape}");
        if h.selected(&name) {
            h.bench(
                &name,
                || (),
                |()| naive_resolve_all(&f, &contraction, &batch),
            );
            h.attach(&name, "queries", Json::num(batch.len() as u32));
        }
    }

    h.finish();
}

/// A reproducible 1k-query mix: equal parts subtree, path, LCA, and
/// component-value queries over random nodes.
fn mixed_batch(f: &Forest<i64>, total: usize) -> QueryBatch {
    let n = f.len() as u64;
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        NodeId::from_index((state % n) as usize)
    };
    let mut batch = QueryBatch::with_capacity(total);
    for i in 0..total {
        match i % 4 {
            0 => batch.subtree(next()),
            1 => batch.path(next(), next()),
            2 => batch.lca(next(), next()),
            _ => batch.component_value(next()),
        };
    }
    batch
}

fn depth_of(f: &Forest<i64>, mut v: NodeId) -> usize {
    let mut d = 0;
    while let Some(p) = f.parent(v) {
        v = p;
        d += 1;
    }
    d
}

fn naive_lca(f: &Forest<i64>, mut u: NodeId, mut v: NodeId) -> Option<NodeId> {
    let (mut du, mut dv) = (depth_of(f, u), depth_of(f, v));
    while du > dv {
        u = f.parent(u).unwrap();
        du -= 1;
    }
    while dv > du {
        v = f.parent(v).unwrap();
        dv -= 1;
    }
    while u != v {
        match (f.parent(u), f.parent(v)) {
            (Some(pu), Some(pv)) => {
                u = pu;
                v = pv;
            }
            _ => return None,
        }
    }
    Some(u)
}

/// The individual-lookup baseline: each query resolved on its own with
/// parent-pointer walks (subtree reads are O(1) against the same
/// contraction either way). Folds every answer into a checksum so the
/// optimizer keeps all the work.
fn naive_resolve_all(f: &Forest<i64>, c: &Contraction<SubtreeSum>, batch: &QueryBatch) -> u64 {
    use dtc_core::Query;
    let mut sum = 0u64;
    for q in batch.queries() {
        match *q {
            Query::Subtree(v) => sum = sum.wrapping_add(*c.subtree_value(v) as u64),
            Query::Path(u, v) => {
                if let Some(w) = naive_lca(f, u, v) {
                    let mut total = *f.label(w);
                    let mut x = u;
                    while x != w {
                        total = total.wrapping_add(*f.label(x));
                        x = f.parent(x).unwrap();
                    }
                    let mut x = v;
                    while x != w {
                        total = total.wrapping_add(*f.label(x));
                        x = f.parent(x).unwrap();
                    }
                    sum = sum.wrapping_add(total as u64);
                }
            }
            Query::Lca(u, v) => {
                if let Some(w) = naive_lca(f, u, v) {
                    sum = sum.wrapping_add(w.index() as u64 + 1);
                }
            }
            Query::ComponentRoot(v) => sum = sum.wrapping_add(f.root_of(v).index() as u64 + 1),
            Query::ComponentValue(v) => {
                sum = sum.wrapping_add(*c.subtree_value(f.root_of(v)) as u64)
            }
        }
    }
    sum
}

/// Folds a batch-answer vector with the same checksum scheme as
/// [`naive_resolve_all`], for the cross-check outside the measured region.
fn naive_checksum_of(answers: &[dtc_core::QueryOutcome<SubtreeSum>]) -> u64 {
    let mut sum = 0u64;
    for a in answers {
        match a.as_ref().expect("bench queries are all valid") {
            Answer::Value(v) => sum = sum.wrapping_add(*v as u64),
            Answer::PathValue(p) => sum = sum.wrapping_add(*p as u64),
            Answer::Node(w) => sum = sum.wrapping_add(w.index() as u64 + 1),
            Answer::NotConnected => {}
        }
    }
    sum
}

fn bench_contract(h: &Harness, name: &str, make: &dyn Fn() -> Forest<i64>) {
    if !h.selected(name) {
        return;
    }
    h.bench(name, make, |f| f.contraction().run(&SubtreeSum).rounds());
    // Engine counters come from one profiled run outside the measured
    // region, so the timed numbers above stay unobserved.
    let contraction = make()
        .contraction()
        .seed(0x5EED)
        .profiled()
        .run(&SubtreeSum);
    attach_profile(h, name, contraction.profile().unwrap());
}

/// Attaches counter totals, phase latency percentiles, and the per-round
/// breakdown of `profile` to the benchmark record named `name`.
fn attach_profile(h: &Harness, name: &str, profile: &Profile) {
    let totals = profile.totals();
    h.attach(
        name,
        "counters",
        Json::Obj(vec![
            ("rounds".to_string(), Json::num(totals.rounds)),
            ("rakes".to_string(), Json::Num(totals.rakes as f64)),
            ("splices".to_string(), Json::Num(totals.splices as f64)),
            ("finishes".to_string(), Json::Num(totals.finishes as f64)),
            (
                "coin_rejections".to_string(),
                Json::Num(totals.coin_rejections as f64),
            ),
            (
                "max_frontier".to_string(),
                Json::Num(totals.max_frontier as f64),
            ),
        ]),
    );
    let phases: Vec<(String, Json)> = Phase::ALL
        .iter()
        .filter(|p| profile.phase_stats(**p).spans() > 0)
        .map(|p| {
            let s = profile.phase_stats(*p);
            (
                p.name().to_string(),
                Json::Obj(vec![
                    ("spans".to_string(), Json::Num(s.spans() as f64)),
                    ("total_ns".to_string(), Json::Num(s.total_ns() as f64)),
                    ("p50_ns".to_string(), Json::Num(s.p50_ns() as f64)),
                    ("p99_ns".to_string(), Json::Num(s.p99_ns() as f64)),
                ]),
            )
        })
        .collect();
    h.attach(name, "phases", Json::Obj(phases));
    let per_round: Vec<Json> = profile
        .per_round()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            Json::Obj(vec![
                ("round".to_string(), Json::num((i + 1) as u32)),
                ("frontier".to_string(), Json::Num(r.frontier as f64)),
                ("rakes".to_string(), Json::Num(r.rakes as f64)),
                ("splices".to_string(), Json::Num(r.splices as f64)),
                ("finishes".to_string(), Json::Num(r.finishes as f64)),
                (
                    "coin_rejections".to_string(),
                    Json::Num(r.coin_rejections as f64),
                ),
            ])
        })
        .collect();
    h.attach(name, "per_round", Json::Arr(per_round));
}

/// Like [`attach_profile`], plus the human-readable [`UpdateStats`] line
/// (which records the dirty-set size for the batch) and the
/// change-propagation slot counters (schema v2).
fn attach_dyn_report(h: &Harness, name: &str, stats: &UpdateStats, profile: &Profile) {
    h.attach(name, "update_stats", Json::str(stats.to_string()));
    h.attach(
        name,
        "replayed_slots",
        Json::Num(stats.replayed_slots as f64),
    );
    h.attach(name, "reused_slots", Json::Num(stats.reused_slots as f64));
    attach_profile(h, name, profile);
}
