//! Contraction and batch-dynamic update benchmarks, broken down by tree
//! shape so depth/degree sensitivity is visible in the numbers.
//!
//! Shapes (all ~100k nodes): `random` (O(log n) depth), `path` (worst-case
//! depth), `star` (worst-case degree), `caterpillar` (deep spine + legs).
//! Each shape is exercised three ways: full contraction, a 1k batch of
//! cuts, and a 1k batch of weight updates.
//!
//! Run with `cargo bench -p dtc-bench`, or `cargo bench -p dtc-bench --
//! --test` for the CI smoke mode (each bench executes once). Add
//! `--json BENCH_contract.json` to emit the machine-readable perf record —
//! timing percentiles plus per-round engine counters from a profiled run —
//! that seeds the repo's perf trajectory.

use dtc_bench::{Harness, Json};
use dtc_core::gen;
use dtc_core::obs::{Phase, Profile};
use dtc_core::{DynForest, Forest, NodeId, SubtreeSum};

/// A named lazy forest generator.
type Shape = (&'static str, Box<dyn Fn() -> Forest<i64>>);

/// The four shape generators of the breakdown matrix.
fn shapes() -> Vec<Shape> {
    vec![
        (
            "random_100k",
            Box::new(|| gen::random_tree(100_000, 42)) as _,
        ),
        ("path_100k", Box::new(|| gen::path(100_000, 42)) as _),
        ("star_100k", Box::new(|| gen::star(100_000, 42)) as _),
        (
            "caterpillar_100k",
            Box::new(|| gen::caterpillar(20_000, 4, 42)) as _,
        ),
    ]
}

fn main() {
    let h = Harness::from_env();

    bench_contract(&h, "contract/random_10k", &|| gen::random_tree(10_000, 42));
    for (shape, make) in shapes() {
        bench_contract(&h, &format!("contract/{shape}"), make.as_ref());
    }

    // Batches of 1k edits against each ~100k-node shape: the state is built
    // once and cloned per iteration so only edit + recompute are measured
    // (clone cost is part of setup, which the harness excludes).
    for (shape, make) in shapes() {
        let base = DynForest::new(make(), SubtreeSum);
        let cuts: Vec<NodeId> = base
            .forest()
            .node_ids()
            .filter(|v| !base.forest().is_root(*v))
            .step_by(97)
            .take(1_000)
            .collect();
        let updates: Vec<(NodeId, i64)> = cuts.iter().map(|&v| (v, 1)).collect();

        let name = format!("batch_cut_1k/{shape}");
        if h.selected(&name) {
            h.bench(
                &name,
                || base.clone(),
                |d| {
                    d.batch_cut(&cuts);
                    d.recompute()
                },
            );
            let mut probe = base.clone();
            probe.enable_profiling();
            probe.batch_cut(&cuts);
            let stats = probe.recompute();
            attach_dyn_report(&h, &name, &stats.to_string(), probe.profile().unwrap());
        }

        let name = format!("batch_update_1k/{shape}");
        if h.selected(&name) {
            h.bench(
                &name,
                || base.clone(),
                |d| {
                    d.batch_update_weights(&updates);
                    d.recompute()
                },
            );
            let mut probe = base.clone();
            probe.enable_profiling();
            probe.batch_update_weights(&updates);
            let stats = probe.recompute();
            attach_dyn_report(&h, &name, &stats.to_string(), probe.profile().unwrap());
        }
    }

    h.finish();
}

fn bench_contract(h: &Harness, name: &str, make: &dyn Fn() -> Forest<i64>) {
    if !h.selected(name) {
        return;
    }
    h.bench(name, make, |f| f.contract(&SubtreeSum).rounds());
    // Engine counters come from one profiled run outside the measured
    // region, so the timed numbers above stay unobserved.
    let contraction = make().contract_profiled(&SubtreeSum, 0x5EED);
    attach_profile(h, name, contraction.profile().unwrap());
}

/// Attaches counter totals, phase latency percentiles, and the per-round
/// breakdown of `profile` to the benchmark record named `name`.
fn attach_profile(h: &Harness, name: &str, profile: &Profile) {
    let totals = profile.totals();
    h.attach(
        name,
        "counters",
        Json::Obj(vec![
            ("rounds".to_string(), Json::num(totals.rounds)),
            ("rakes".to_string(), Json::Num(totals.rakes as f64)),
            ("splices".to_string(), Json::Num(totals.splices as f64)),
            ("finishes".to_string(), Json::Num(totals.finishes as f64)),
            (
                "coin_rejections".to_string(),
                Json::Num(totals.coin_rejections as f64),
            ),
            (
                "max_frontier".to_string(),
                Json::Num(totals.max_frontier as f64),
            ),
        ]),
    );
    let phases: Vec<(String, Json)> = Phase::ALL
        .iter()
        .filter(|p| profile.phase_stats(**p).spans() > 0)
        .map(|p| {
            let s = profile.phase_stats(*p);
            (
                p.name().to_string(),
                Json::Obj(vec![
                    ("spans".to_string(), Json::Num(s.spans() as f64)),
                    ("total_ns".to_string(), Json::Num(s.total_ns() as f64)),
                    ("p50_ns".to_string(), Json::Num(s.p50_ns() as f64)),
                    ("p99_ns".to_string(), Json::Num(s.p99_ns() as f64)),
                ]),
            )
        })
        .collect();
    h.attach(name, "phases", Json::Obj(phases));
    let per_round: Vec<Json> = profile
        .per_round()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            Json::Obj(vec![
                ("round".to_string(), Json::num((i + 1) as u32)),
                ("frontier".to_string(), Json::Num(r.frontier as f64)),
                ("rakes".to_string(), Json::Num(r.rakes as f64)),
                ("splices".to_string(), Json::Num(r.splices as f64)),
                ("finishes".to_string(), Json::Num(r.finishes as f64)),
                (
                    "coin_rejections".to_string(),
                    Json::Num(r.coin_rejections as f64),
                ),
            ])
        })
        .collect();
    h.attach(name, "per_round", Json::Arr(per_round));
}

/// Like [`attach_profile`], plus the human-readable [`UpdateStats`] line
/// (which records the dirty-set size for the batch).
///
/// [`UpdateStats`]: dtc_core::UpdateStats
fn attach_dyn_report(h: &Harness, name: &str, stats_line: &str, profile: &Profile) {
    h.attach(name, "update_stats", Json::str(stats_line));
    attach_profile(h, name, profile);
}
