//! Contraction and batch-dynamic update benchmarks.
//!
//! Run with `cargo bench -p dtc-bench`, or `cargo bench -p dtc-bench --
//! --test` for the CI smoke mode (each bench executes once).

use dtc_bench::Harness;
use dtc_core::gen;
use dtc_core::{DynForest, Forest, NodeId, SubtreeSum};

fn main() {
    let h = Harness::from_env();

    bench_contract(&h, "contract/random_10k", || gen::random_tree(10_000, 42));
    bench_contract(&h, "contract/random_100k", || gen::random_tree(100_000, 42));
    bench_contract(&h, "contract/path_100k", || gen::path(100_000, 42));
    bench_contract(&h, "contract/caterpillar_100k", || {
        gen::caterpillar(20_000, 4, 42)
    });

    // Batch of 1k cuts against a 100k-node random tree: the state is built
    // once and cloned per iteration so only cut + recompute are measured
    // (clone cost is part of setup, which the harness excludes).
    let base = DynForest::new(gen::random_tree(100_000, 7), SubtreeSum);
    let cuts: Vec<NodeId> = base
        .forest()
        .node_ids()
        .filter(|v| !base.forest().is_root(*v))
        .step_by(97)
        .take(1_000)
        .collect();
    h.bench(
        "dynamic/batch_cut_1k",
        || base.clone(),
        |d| {
            d.batch_cut(&cuts);
            d.recompute()
        },
    );

    let updates: Vec<(NodeId, i64)> = cuts.iter().map(|&v| (v, 1)).collect();
    h.bench(
        "dynamic/batch_update_1k",
        || base.clone(),
        |d| {
            d.batch_update_weights(&updates);
            d.recompute()
        },
    );
}

fn bench_contract(h: &Harness, name: &str, mut make: impl FnMut() -> Forest<i64>) {
    h.bench(name, &mut make, |f| f.contract(&SubtreeSum).rounds());
}
