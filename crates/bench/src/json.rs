//! A hand-rolled JSON value, writer, and parser.
//!
//! The build container has no registry access, so instead of `serde_json`
//! this module ships the minimal JSON surface the bench pipeline needs: a
//! [`Json`] tree, a pretty writer (stable, diff-friendly output for the
//! committed `BENCH_*.json` trajectory files), and a strict recursive-
//! descent parser used by tests and smoke checks to prove emitted records
//! parse back.

use std::fmt;

/// A JSON value.
///
/// Numbers are `f64` (integers round-trip exactly up to 2⁵³, far beyond any
/// counter or nanosecond value we emit). Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for numeric values.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Object member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; null is the least-wrong encoding.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring it to span the full input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

/// Nesting limit; well beyond anything the bench pipeline emits, but keeps
/// the recursive parser safe on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote/escape.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control byte in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let text = v.to_string_pretty();
        let back = parse(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(&back, v, "round trip through:\n{text}");
    }

    #[test]
    fn round_trips_nested_values() {
        round_trip(&Json::Obj(vec![
            ("schema".into(), Json::str("dtc-bench/v1")),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
            (
                "benches".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::str("contract/star_100k")),
                    ("iters".into(), Json::num(57u32)),
                    ("p99_ns".into(), Json::num(8_712_345u32)),
                    ("frac".into(), Json::Num(0.25)),
                    ("neg".into(), Json::Num(-3.0)),
                    ("flag".into(), Json::Bool(true)),
                    ("nothing".into(), Json::Null),
                ])]),
            ),
        ]));
    }

    #[test]
    fn round_trips_string_escapes() {
        round_trip(&Json::str(
            "quote \" slash \\ newline \n tab \t ctrl \u{1} unicode µß™",
        ));
    }

    #[test]
    fn parses_external_json() {
        let doc = parse(r#" { "a" : [ 1 , 2.5e1 , -3 ] , "b" : "µ😀" } "#).unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(25.0)
        );
        assert_eq!(doc.get("b").unwrap().as_str(), Some("µ😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "[01x]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn integers_are_written_without_decimals() {
        assert_eq!(Json::num(42u32).to_string_pretty(), "42\n");
        assert_eq!(Json::Num(0.5).to_string_pretty(), "0.5\n");
    }
}
