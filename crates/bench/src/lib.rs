//! A minimal Criterion-style benchmark harness.
//!
//! The container this repo builds in has no access to crates.io, so instead
//! of depending on `criterion` we ship a tiny harness with the features CI
//! and the perf-trajectory pipeline need:
//!
//! * timed runs with per-iteration setup (measured region excludes setup);
//! * a `--test` smoke mode (`cargo bench -- --test`) that runs every bench
//!   exactly once so benchmarks cannot bit-rot without failing CI;
//! * a `--json <path>` mode that serializes every benchmark record
//!   (min/p50/mean/p90/p99, iteration count, plus any attached engine
//!   counters) with the hand-rolled [`json`] writer — this is what emits
//!   the `BENCH_*.json` files recording the repo's perf trajectory.
//!
//! Unknown `--flags` are rejected with a clear error (exit code 2) rather
//! than silently ignored; cargo's own `--bench` passthrough is tolerated.

use std::cell::RefCell;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub mod json;

pub use json::Json;

/// Schema tag written into every `--json` record this harness emits.
///
/// `v2` extends `v1` with change-propagation slot counters
/// (`replayed_slots` / `reused_slots`) on batch-update records; readers
/// that tolerate missing keys can treat the two identically, which is why
/// [`parse_record`] accepts both.
pub const SCHEMA: &str = "dtc-bench/v2";

/// Schema tags [`parse_record`] accepts: the current version plus every
/// older version still present in the repo's perf-trajectory files.
pub const ACCEPTED_SCHEMAS: &[&str] = &["dtc-bench/v2", "dtc-bench/v1"];

/// Parses a `BENCH_*.json` perf record and validates its `schema` tag
/// against [`ACCEPTED_SCHEMAS`], so trajectory tooling fails loudly on a
/// record from an incompatible future format instead of misreading it.
pub fn parse_record(text: &str) -> Result<Json, String> {
    let doc = json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(tag) if ACCEPTED_SCHEMAS.contains(&tag) => Ok(doc),
        Some(tag) => Err(format!(
            "unsupported schema `{tag}` (accepted: {})",
            ACCEPTED_SCHEMAS.join(", ")
        )),
        None => Err("record has no `schema` string".to_string()),
    }
}

/// Target measured wall time per benchmark before reporting.
const TARGET_TIME: Duration = Duration::from_millis(500);
/// Iteration bounds per benchmark.
const MIN_ITERS: usize = 5;
const MAX_ITERS: usize = 200;

/// One finished benchmark, as recorded for `--json` output.
#[derive(Debug)]
struct Record {
    name: String,
    iters: usize,
    min_ns: u64,
    p50_ns: u64,
    mean_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    extra: Vec<(String, Json)>,
}

/// Benchmark runner configured from the command line.
#[derive(Debug)]
pub struct Harness {
    test_mode: bool,
    filter: Option<String>,
    json_path: Option<PathBuf>,
    records: RefCell<Vec<Record>>,
    meta: RefCell<Vec<(String, Json)>>,
}

impl Harness {
    /// Parses command-line style arguments (without the binary name):
    ///
    /// * `--test` — smoke mode, every bench runs exactly once;
    /// * `--json <path>` (or `--json=<path>`) — write a machine-readable
    ///   record of every benchmark to `path` when [`Harness::finish`] runs;
    /// * `--bench` — ignored (cargo passes it to `harness = false` benches);
    /// * any other `--flag` — an error;
    /// * a bare word — substring filter on benchmark names.
    pub fn try_from_args<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut test_mode = false;
        let mut filter = None;
        let mut json_path = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Cargo invokes `harness = false` bench binaries with
                // `--bench`; tolerate it.
                "--bench" => {}
                "--json" => {
                    let path = it
                        .next()
                        .ok_or_else(|| "--json requires a path argument".to_string())?;
                    json_path = Some(PathBuf::from(path));
                }
                s if s.starts_with("--json=") => {
                    json_path = Some(PathBuf::from(&s["--json=".len()..]));
                }
                s if s.starts_with('-') => {
                    return Err(format!(
                        "unknown flag `{s}` (expected --test, --json <path>, \
                         or a benchmark name filter)"
                    ));
                }
                s => filter = Some(s.to_string()),
            }
        }
        Ok(Harness {
            test_mode,
            filter,
            json_path,
            records: RefCell::new(Vec::new()),
            meta: RefCell::new(Vec::new()),
        })
    }

    /// Parses `std::env::args`, printing the error and exiting with status
    /// 2 on an unknown flag.
    pub fn from_env() -> Self {
        match Self::try_from_args(std::env::args().skip(1)) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("dtc-bench: {e}");
                std::process::exit(2);
            }
        }
    }

    /// `true` when running in `--test` smoke mode.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    fn skip(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    /// `true` when `name` passes the command-line filter; lets callers skip
    /// expensive non-bench work (e.g. profiled counter collection) for
    /// benches that will not run.
    pub fn selected(&self, name: &str) -> bool {
        !self.skip(name)
    }

    /// Runs one benchmark: `setup` builds fresh per-iteration state (not
    /// measured), `routine` is the measured region. The routine's output is
    /// returned from a black-box sink so the optimizer cannot discard it.
    pub fn bench<S, T>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> T,
    ) {
        if self.skip(name) {
            return;
        }
        if self.test_mode {
            let mut state = setup();
            let start = Instant::now();
            let out = routine(&mut state);
            let elapsed = start.elapsed();
            std::hint::black_box(&out);
            self.push_record(name, &mut [elapsed]);
            println!("test {name} ... ok");
            return;
        }

        // Warmup.
        for _ in 0..2 {
            let mut state = setup();
            std::hint::black_box(&routine(&mut state));
        }

        let mut samples: Vec<Duration> = Vec::new();
        let mut total = Duration::ZERO;
        while samples.len() < MIN_ITERS || (total < TARGET_TIME && samples.len() < MAX_ITERS) {
            let mut state = setup();
            let start = Instant::now();
            let out = routine(&mut state);
            let elapsed = start.elapsed();
            std::hint::black_box(&out);
            samples.push(elapsed);
            total += elapsed;
        }
        let rec = self.push_record(name, &mut samples);
        println!(
            "{name:<32} min {:>12} | median {:>12} | mean {:>12} | p99 {:>12} | {} iters",
            fmt_duration(Duration::from_nanos(rec.0)),
            fmt_duration(Duration::from_nanos(rec.1)),
            fmt_duration(Duration::from_nanos(rec.2)),
            fmt_duration(Duration::from_nanos(rec.3)),
            samples.len()
        );
    }

    /// Sorts `samples`, records percentiles, and returns
    /// `(min, p50, mean, p99)` in nanoseconds for display.
    fn push_record(&self, name: &str, samples: &mut [Duration]) -> (u64, u64, u64, u64) {
        samples.sort_unstable();
        let ns = |d: Duration| d.as_nanos() as u64;
        let pct = |q: usize| ns(samples[(samples.len() - 1) * q / 100]);
        let total: Duration = samples.iter().sum();
        let mean_ns = ns(total) / samples.len() as u64;
        let rec = Record {
            name: name.to_string(),
            iters: samples.len(),
            min_ns: ns(samples[0]),
            p50_ns: pct(50),
            mean_ns,
            p90_ns: pct(90),
            p99_ns: pct(99),
            max_ns: ns(samples[samples.len() - 1]),
            extra: Vec::new(),
        };
        let out = (rec.min_ns, rec.p50_ns, rec.mean_ns, rec.p99_ns);
        self.records.borrow_mut().push(rec);
        out
    }

    /// Attaches an extra key/value (e.g. engine counters) to the record of
    /// an already-run benchmark named `name`. No-op if the benchmark was
    /// filtered out.
    pub fn attach(&self, name: &str, key: &str, value: Json) {
        let mut records = self.records.borrow_mut();
        if let Some(rec) = records.iter_mut().find(|r| r.name == name) {
            rec.extra.push((key.to_string(), value));
        }
    }

    /// Attaches a document-level key/value to the `--json` output (next to
    /// `schema`/`mode`), e.g. build configuration that affects whether the
    /// numbers are comparable across records.
    pub fn meta(&self, key: &str, value: Json) {
        self.meta.borrow_mut().push((key.to_string(), value));
    }

    /// Writes the `--json` record file, if one was requested. Call once,
    /// after the last benchmark.
    ///
    /// # Panics
    /// Panics if the file cannot be written.
    pub fn finish(&self) {
        let Some(path) = &self.json_path else {
            return;
        };
        let path = resolve_output_path(path);
        let records = self.records.borrow();
        let benches: Vec<Json> = records
            .iter()
            .map(|r| {
                let mut members = vec![
                    ("name".to_string(), Json::str(r.name.as_str())),
                    ("iters".to_string(), Json::num(r.iters as u32)),
                    ("min_ns".to_string(), Json::Num(r.min_ns as f64)),
                    ("p50_ns".to_string(), Json::Num(r.p50_ns as f64)),
                    ("mean_ns".to_string(), Json::Num(r.mean_ns as f64)),
                    ("p90_ns".to_string(), Json::Num(r.p90_ns as f64)),
                    ("p99_ns".to_string(), Json::Num(r.p99_ns as f64)),
                    ("max_ns".to_string(), Json::Num(r.max_ns as f64)),
                ];
                members.extend(r.extra.iter().cloned());
                Json::Obj(members)
            })
            .collect();
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut members = vec![
            ("schema".to_string(), Json::str(SCHEMA)),
            (
                "mode".to_string(),
                Json::str(if self.test_mode { "test" } else { "bench" }),
            ),
            ("unix_time_s".to_string(), Json::Num(unix_time as f64)),
        ];
        members.extend(self.meta.borrow().iter().cloned());
        members.push(("benches".to_string(), Json::Arr(benches)));
        let doc = Json::Obj(members);
        std::fs::write(&path, doc.to_string_pretty())
            .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        println!("wrote benchmark record to {}", path.display());
    }
}

/// Anchors a relative `--json` path at the workspace root.
///
/// Cargo runs `harness = false` bench binaries with the *package*
/// directory as cwd, not the directory `cargo bench` was invoked from, so
/// a bare `--json BENCH_contract.json` would land in `crates/bench/`. The
/// outermost ancestor directory containing a `Cargo.toml` is the workspace
/// root; anchoring there makes the output location predictable. Absolute
/// paths are used as-is.
fn resolve_output_path(path: &std::path::Path) -> PathBuf {
    if path.is_absolute() {
        return path.to_path_buf();
    }
    let Ok(cwd) = std::env::current_dir() else {
        return path.to_path_buf();
    };
    let mut root = cwd.as_path();
    for anc in cwd.ancestors() {
        if anc.join("Cargo.toml").is_file() {
            root = anc;
        }
    }
    root.join(path)
}

impl Default for Harness {
    fn default() -> Self {
        Harness::from_env()
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fmt_picks_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn parses_known_flags_and_filter() {
        let h = Harness::try_from_args(args(&["--bench", "--test", "contract"])).unwrap();
        assert!(h.is_test_mode());
        assert!(h.selected("contract/star_100k"));
        assert!(!h.selected("dynamic/batch_cut"));

        let h = Harness::try_from_args(args(&["--json", "/tmp/x.json"])).unwrap();
        assert_eq!(
            h.json_path.as_deref(),
            Some(std::path::Path::new("/tmp/x.json"))
        );
        let h = Harness::try_from_args(args(&["--json=/tmp/y.json"])).unwrap();
        assert_eq!(
            h.json_path.as_deref(),
            Some(std::path::Path::new("/tmp/y.json"))
        );
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = Harness::try_from_args(args(&["--wat"])).unwrap_err();
        assert!(err.contains("--wat"), "error should name the flag: {err}");
        let err = Harness::try_from_args(args(&["--json"])).unwrap_err();
        assert!(err.contains("path"), "error should explain --json: {err}");
    }

    #[test]
    fn json_output_parses_back() {
        let path =
            std::env::temp_dir().join(format!("dtc_bench_smoke_{}.json", std::process::id()));
        let h = Harness::try_from_args(args(&["--test", "--json", &path.display().to_string()]))
            .unwrap();
        h.bench(
            "smoke/a",
            || 0u64,
            |x| {
                *x += 1;
                *x
            },
        );
        h.attach(
            "smoke/a",
            "counters",
            Json::Obj(vec![("rounds".to_string(), Json::num(3u32))]),
        );
        // Attaching to a filtered-out/unknown bench is a silent no-op.
        h.attach("smoke/missing", "counters", Json::Null);
        h.meta("check", Json::Bool(false));
        h.finish();

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let doc = parse_record(&text).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(doc.get("mode").unwrap().as_str(), Some("test"));
        assert_eq!(doc.get("check"), Some(&Json::Bool(false)));
        let benches = doc.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        let rec = &benches[0];
        assert_eq!(rec.get("name").unwrap().as_str(), Some("smoke/a"));
        assert_eq!(rec.get("iters").unwrap().as_num(), Some(1.0));
        assert!(rec.get("p99_ns").unwrap().as_num().is_some());
        let counters = rec.get("counters").unwrap();
        assert_eq!(counters.get("rounds").unwrap().as_num(), Some(3.0));
    }

    #[test]
    fn parse_record_accepts_v1_and_rejects_unknown_schemas() {
        // v1 records from earlier in the perf trajectory must stay readable.
        let v1 = r#"{ "schema": "dtc-bench/v1", "benches": [] }"#;
        assert!(parse_record(v1).is_ok());
        let v2 = r#"{ "schema": "dtc-bench/v2", "benches": [] }"#;
        assert!(parse_record(v2).is_ok());

        let future = r#"{ "schema": "dtc-bench/v9", "benches": [] }"#;
        let err = parse_record(future).unwrap_err();
        assert!(err.contains("dtc-bench/v9"), "error names the tag: {err}");
        let missing = r#"{ "benches": [] }"#;
        assert!(parse_record(missing).is_err());
    }
}
