//! A minimal Criterion-style benchmark harness.
//!
//! The container this repo builds in has no access to crates.io, so instead
//! of depending on `criterion` we ship a tiny harness with the two features
//! CI needs:
//!
//! * timed runs with per-iteration setup (measured region excludes setup);
//! * a `--test` smoke mode (`cargo bench -- --test`) that runs every bench
//!   exactly once so benchmarks cannot bit-rot without failing CI.

use std::time::{Duration, Instant};

/// Target measured wall time per benchmark before reporting.
const TARGET_TIME: Duration = Duration::from_millis(500);
/// Iteration bounds per benchmark.
const MIN_ITERS: usize = 5;
const MAX_ITERS: usize = 200;

/// Benchmark runner configured from the command line.
pub struct Harness {
    test_mode: bool,
    filter: Option<String>,
}

impl Harness {
    /// Parses `std::env::args`: `--test` enables smoke mode, any other
    /// non-flag argument is a substring filter on benchmark names (flags
    /// cargo passes through, like `--bench`, are ignored).
    pub fn from_env() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Harness { test_mode, filter }
    }

    /// `true` when running in `--test` smoke mode.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    fn skip(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    /// Runs one benchmark: `setup` builds fresh per-iteration state (not
    /// measured), `routine` is the measured region. The routine's output is
    /// returned from a black-box sink so the optimizer cannot discard it.
    pub fn bench<S, T>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> T,
    ) {
        if self.skip(name) {
            return;
        }
        if self.test_mode {
            let mut state = setup();
            let out = routine(&mut state);
            std::hint::black_box(&out);
            println!("test {name} ... ok");
            return;
        }

        // Warmup.
        for _ in 0..2 {
            let mut state = setup();
            std::hint::black_box(&routine(&mut state));
        }

        let mut samples: Vec<Duration> = Vec::new();
        let mut total = Duration::ZERO;
        while samples.len() < MIN_ITERS || (total < TARGET_TIME && samples.len() < MAX_ITERS) {
            let mut state = setup();
            let start = Instant::now();
            let out = routine(&mut state);
            let elapsed = start.elapsed();
            std::hint::black_box(&out);
            samples.push(elapsed);
            total += elapsed;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let mean = total / samples.len() as u32;
        println!(
            "{name:<32} min {:>12} | median {:>12} | mean {:>12} | {} iters",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len()
        );
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::from_env()
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_picks_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
