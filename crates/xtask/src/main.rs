//! `cargo run -p xtask -- lint`: dependency-free source lints.
//!
//! CI runs this next to `clippy`; it enforces repo conventions clippy has
//! no lints for:
//!
//! 1. **panic-free library paths** (`panic` rule): `dtc-core` library code
//!    must not call `unwrap()` / `expect()` / `panic!` / `unreachable!` /
//!    `todo!` / `unimplemented!`. Fallible-on-bad-input paths return `Err`;
//!    provably-unreachable sites use the crate's `invariant!` macro or
//!    carry an explicit `lint:allow(panic): <reason>` marker on the same
//!    or previous line. Test modules (`#[cfg(test)]` tails) are exempt.
//! 2. **thread confinement** (`thread` rule): `std::thread` may only be
//!    named in `par.rs`, the designated parallel substrate, so a future
//!    backend swap stays a one-module change.
//! 3. **telemetry gating** (`obs-gate` rule): every `sink.phase(..)` /
//!    `sink.round(..)` call site must sit behind an `S::ENABLED` guard
//!    (directly or via a timestamp that is `Some` only when enabled), so
//!    the no-op sink build provably pays nothing. Checked heuristically:
//!    a gate (`ENABLED` or `if let Some`) must appear within the preceding
//!    few lines.
//! 4. **feature-gate hygiene** (`features` rule): every
//!    `feature = "name"` referenced from a crate's sources must be
//!    declared in that crate's `Cargo.toml` `[features]` table —
//!    misspelled gates otherwise silently compile code out.
//!
//! The lint is intentionally line-based and dependency-free (no syn, no
//! registry access): it trades a little precision for zero build cost, and
//! the `lint:allow` escape hatch covers the false positives.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint violation, printed as `file:line: [rule] message`.
#[derive(Debug)]
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\nusage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    // xtask lives at <root>/crates/xtask, so the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf();

    let mut findings = Vec::new();
    let core_src = root.join("crates/core/src");
    for file in rust_files(&core_src) {
        let Ok(text) = fs::read_to_string(&file) else {
            findings.push(Finding {
                file: file.clone(),
                line: 0,
                rule: "io",
                msg: "unreadable source file".into(),
            });
            continue;
        };
        let rel = file.strip_prefix(&root).unwrap_or(&file).to_path_buf();
        lint_panics(&rel, &text, &mut findings);
        lint_threads(&rel, &text, &mut findings);
        lint_obs_gating(&rel, &text, &mut findings);
    }

    for crate_dir in crate_dirs(&root) {
        lint_feature_hygiene(&root, &crate_dir, &mut findings);
    }

    if findings.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// All `.rs` files under `dir`, recursively, in stable (sorted) order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// The workspace's crate directories (`crates/*` containing a Cargo.toml).
fn crate_dirs(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return out;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.join("Cargo.toml").is_file() {
            out.push(p);
        }
    }
    out.sort();
    out
}

/// `true` for lines that are entirely comment (incl. doc comments), which
/// every textual rule skips.
fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')
}

/// Parses a `lint:allow(name)` marker out of a line, returning the rule
/// name it waives.
fn allow_marker(line: &str) -> Option<&str> {
    let rest = &line[line.find("lint:allow(")? + "lint:allow(".len()..];
    let end = rest.find(')')?;
    Some(&rest[..end])
}

/// `true` when line `i` (0-based) carries the marker itself or inherits it
/// from the immediately preceding line.
fn allowed(lines: &[&str], i: usize, rule: &str) -> bool {
    let here = allow_marker(lines[i]) == Some(rule);
    let above = i > 0 && allow_marker(lines[i - 1]) == Some(rule);
    here || above
}

/// Tokens of the `panic` rule. `.unwrap()` is matched exactly so
/// `unwrap_or` / `unwrap_or_else` / `unwrap_or_default` stay legal.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn lint_panics(file: &Path, text: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    let mut in_tests = false;
    for (i, &line) in lines.iter().enumerate() {
        // Unit-test modules conventionally trail the file behind
        // `#[cfg(test)]`; everything after that attribute is test code.
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests || is_comment(line) {
            continue;
        }
        for token in PANIC_TOKENS {
            // Only the code part of the line counts; a trailing comment
            // mentioning `panic!(` is not a call.
            let code = line.split("//").next().unwrap_or(line);
            if code.contains(token) && !allowed(&lines, i, "panic") {
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: "panic",
                    msg: format!(
                        "`{token}` in library code; return an error, use `invariant!`, \
                         or mark the site `lint:allow(panic): <reason>`"
                    ),
                });
            }
        }
    }
}

fn lint_threads(file: &Path, text: &str, findings: &mut Vec<Finding>) {
    if file.file_name().is_some_and(|f| f == "par.rs") {
        return;
    }
    let lines: Vec<&str> = text.lines().collect();
    for (i, &line) in lines.iter().enumerate() {
        if is_comment(line) {
            continue;
        }
        let code = line.split("//").next().unwrap_or(line);
        if code.contains("std::thread") && !allowed(&lines, i, "thread") {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: i + 1,
                rule: "thread",
                msg: "`std::thread` outside par.rs; route parallelism through the \
                      par substrate"
                    .into(),
            });
        }
    }
}

/// How many preceding lines may separate a `sink.phase(..)` /
/// `sink.round(..)` call from its `ENABLED` / `if let Some` gate.
const OBS_GATE_WINDOW: usize = 12;

fn lint_obs_gating(file: &Path, text: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    for (i, &line) in lines.iter().enumerate() {
        if is_comment(line) {
            continue;
        }
        let code = line.split("//").next().unwrap_or(line);
        if !(code.contains("sink.phase(") || code.contains("sink.round(")) {
            continue;
        }
        let lo = i.saturating_sub(OBS_GATE_WINDOW);
        let gated = lines[lo..=i]
            .iter()
            .any(|l| l.contains("ENABLED") || l.contains("if let Some"));
        if !gated && !allowed(&lines, i, "obs-gate") {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: i + 1,
                rule: "obs-gate",
                msg: format!(
                    "telemetry call without an `S::ENABLED` guard within {OBS_GATE_WINDOW} \
                     lines; gate it so the no-op sink build pays nothing"
                ),
            });
        }
    }
}

/// Feature names declared in a `[features]` table, parsed line-wise.
fn declared_features(cargo_toml: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_features = false;
    for line in cargo_toml.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_features = t == "[features]";
            continue;
        }
        if in_features && !t.is_empty() && !t.starts_with('#') {
            if let Some(name) = t.split('=').next() {
                out.push(name.trim().to_string());
            }
        }
    }
    out
}

/// Every feature name referenced as `feature = "x"` on a code line.
fn feature_refs(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find("feature = \"") {
        rest = &rest[pos + "feature = \"".len()..];
        if let Some(end) = rest.find('"') {
            out.push(&rest[..end]);
            rest = &rest[end..];
        } else {
            break;
        }
    }
    out
}

fn lint_feature_hygiene(root: &Path, crate_dir: &Path, findings: &mut Vec<Finding>) {
    let manifest = crate_dir.join("Cargo.toml");
    let Ok(toml) = fs::read_to_string(&manifest) else {
        return;
    };
    let declared = declared_features(&toml);
    for file in rust_files(crate_dir) {
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        for (i, line) in text.lines().enumerate() {
            if is_comment(line) {
                continue;
            }
            for name in feature_refs(line) {
                if !declared.iter().any(|d| d == name) {
                    findings.push(Finding {
                        file: rel.clone(),
                        line: i + 1,
                        rule: "features",
                        msg: format!(
                            "feature `{name}` is not declared in {}'s [features] table",
                            crate_dir
                                .file_name()
                                .and_then(|n| n.to_str())
                                .unwrap_or("?")
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_marker_parses_rule_names() {
        assert_eq!(
            allow_marker("x(); // lint:allow(panic): reason"),
            Some("panic")
        );
        assert_eq!(allow_marker("// lint:allow(thread)"), Some("thread"));
        assert_eq!(allow_marker("plain code"), None);
        assert_eq!(allow_marker("lint:allow(unclosed"), None);
    }

    #[test]
    fn marker_covers_same_and_previous_line() {
        let lines = vec![
            "// lint:allow(panic): next line is fine",
            "x.unwrap();",
            "y.unwrap();",
        ];
        assert!(allowed(&lines, 1, "panic"));
        assert!(!allowed(&lines, 2, "panic"));
        assert!(!allowed(&lines, 1, "thread"));
    }

    #[test]
    fn panic_rule_flags_tokens_but_skips_tests_and_comments() {
        let src = "fn f() {\n\
                   let a = b.unwrap();\n\
                   // a comment about .unwrap()\n\
                   let c = d.unwrap_or_default();\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests { fn g() { h.unwrap(); } }\n";
        let mut findings = Vec::new();
        lint_panics(Path::new("x.rs"), src, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn thread_rule_exempts_par_rs() {
        let src = "use std::thread;\n";
        let mut findings = Vec::new();
        lint_threads(Path::new("crates/core/src/par.rs"), src, &mut findings);
        assert!(findings.is_empty());
        lint_threads(Path::new("crates/core/src/engine.rs"), src, &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn obs_rule_wants_a_nearby_gate() {
        let gated = "if let Some(t) = start {\n    sink.phase(Phase::Plan, 0);\n}\n";
        let mut findings = Vec::new();
        lint_obs_gating(Path::new("x.rs"), gated, &mut findings);
        assert!(findings.is_empty());
        let bare = "fn f() {\n\n\n\n\n\n\n\n\n\n\n\n\n    sink.round(&rc);\n}\n";
        lint_obs_gating(Path::new("x.rs"), bare, &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn obs_rule_accepts_the_propagate_span_idiom() {
        // The change-propagation pass opens its span with a gated start
        // timestamp and closes it at the end of the function; both ends
        // must satisfy the lint as written in propagate.rs.
        let src = "let start = if S::ENABLED { Some(Instant::now()) } else { None };\n\
                   // ... propagation wave ...\n\
                   if let Some(t) = start {\n\
                   \x20   sink.phase(Phase::Propagate, t.elapsed().as_nanos() as u64);\n\
                   }\n";
        let mut findings = Vec::new();
        lint_obs_gating(
            Path::new("crates/core/src/propagate.rs"),
            src,
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn feature_table_and_refs_parse() {
        let toml =
            "[package]\nname = \"x\"\n[features]\nparallel = []\ncheck = []\n\n[dependencies]\n";
        assert_eq!(declared_features(toml), vec!["parallel", "check"]);
        assert_eq!(
            feature_refs("#[cfg(all(feature = \"check\", feature = \"parallel\"))]"),
            vec!["check", "parallel"]
        );
        assert!(feature_refs("no features here").is_empty());
    }

    #[test]
    fn finding_formats_as_file_line_rule() {
        let f = Finding {
            file: PathBuf::from("crates/core/src/engine.rs"),
            line: 7,
            rule: "panic",
            msg: "boom".into(),
        };
        assert_eq!(f.to_string(), "crates/core/src/engine.rs:7: [panic] boom");
    }
}

// The binary's own `expect` above (workspace-root discovery) is fine: xtask
// is tooling, not library code, and the panic rule only walks
// `crates/core/src`.
